// Wall-clock profiling scopes for the real compute paths.
//
// Everything virtual-clock is already accounted for by tracing; the
// profiler answers the other question — where does WALL time go when the
// decode compute actually runs (embedding compile, batched sweep kernel,
// readout/unembed, field delta-recompile)?  Usage:
//
//   void hot_path() {
//     QUAMAX_PROF_SCOPE("anneal.batch_kernel");
//     ...
//   }
//
// Design constraints, in priority order:
//   * Zero interference with results: the profiler reads std::steady_clock
//     and thread-local counters only — no RNG, no allocation on the hot
//     path after warm-up, no effect on any computed value.  Reports stay
//     bit-identical with profiling on or off (CI gates this via the trace
//     zero-drift diff; --prof output goes to stderr).
//   * Near-zero cost when off: a disabled scope is one relaxed atomic load
//     and a branch; QUAMAX_PROF_DISABLED compiles scopes out entirely.
//   * No hot-path locks: samples accumulate in thread_local tables (one per
//     ThreadPool lane, since lanes are threads); the global mutex is taken
//     only at stage registration (once per call site), thread retirement,
//     and table() aggregation.
//
// table() aggregates live + retired lane tables; call it when workers are
// quiescent (after a run, between phases) for a complete picture.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace quamax::obs {

class Profiler {
 public:
  /// Process-wide instance (intentionally leaked: thread_local lane tables
  /// flush into it from thread destructors, so it must outlive every
  /// thread regardless of static-destruction order).
  static Profiler& instance();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Interns `name` and returns its stage id.  Deduplicated by name, so
  /// the same stage instrumented at two call sites aggregates together.
  /// Called once per call site via the macro's static-local initializer.
  int register_stage(const std::string& name);

  /// Folds one timed interval into the calling thread's lane table.
  void record(int stage, std::uint64_t elapsed_ns);

  struct StageTotals {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    int lanes = 0;  ///< number of threads (pool lanes) that hit the stage
  };

  /// Aggregated per-stage totals across all lanes, sorted by total_ns
  /// descending (ties broken by name for a deterministic dump order).
  std::vector<StageTotals> table();

  /// Renders table() as an aligned text table; `top_n` = 0 prints all
  /// stages.  Callers print to stderr: serving binaries byte-diff stdout.
  void dump(std::ostream& out, std::size_t top_n = 0);

  /// Renders table() as a JSON array of stage objects, each also carrying
  /// its `quamax_prof_<stage>_{calls,total_ns}` counter spellings (stage
  /// names sanitized to [a-z0-9_]) — the machine-readable `--prof-json`
  /// output that tools/bench_to_json.py carries into bench records.
  void dump_json(std::ostream& out);

  /// The sanitized counter prefix dump_json uses for `name`, e.g.
  /// "anneal.batch_sweep" -> "quamax_prof_anneal_batch_sweep".
  static std::string counter_prefix(const std::string& name);

  /// dump_json to `path` (truncating); the shared `--prof-json FILE`
  /// backend.  Returns false if the file cannot be written.  Never touches
  /// stdout — serving binaries byte-diff their stdout in CI.
  bool dump_json_file(const std::string& path);

  /// Clears all samples (live lane tables and retired totals); registered
  /// stage names survive so stage ids stay valid.
  void reset();

 private:
  friend struct LaneTable;
  Profiler() = default;

  std::atomic<bool> enabled_{false};
};

/// RAII timer used by QUAMAX_PROF_SCOPE.  When the profiler is disabled at
/// construction, start_ stays 0 and the destructor records nothing.
class ProfScope {
 public:
  explicit ProfScope(int stage) : stage_(stage) {
    if (Profiler::instance().enabled()) start_ = now_ns();
  }
  ~ProfScope() {
    if (start_ != 0) Profiler::instance().record(stage_, now_ns() - start_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  int stage_;
  std::uint64_t start_ = 0;
};

}  // namespace quamax::obs

#define QUAMAX_PROF_CONCAT2(a, b) a##b
#define QUAMAX_PROF_CONCAT(a, b) QUAMAX_PROF_CONCAT2(a, b)

#if defined(QUAMAX_PROF_DISABLED)
#define QUAMAX_PROF_SCOPE(name) ((void)0)
#else
/// Times the enclosing scope under `name` (a string literal).  The stage id
/// is interned once per call site via a function-local static.
#define QUAMAX_PROF_SCOPE(name)                                         \
  static const int QUAMAX_PROF_CONCAT(quamax_prof_stage_, __LINE__) =   \
      ::quamax::obs::Profiler::instance().register_stage(name);         \
  ::quamax::obs::ProfScope QUAMAX_PROF_CONCAT(quamax_prof_scope_,       \
                                              __LINE__)(               \
      QUAMAX_PROF_CONCAT(quamax_prof_stage_, __LINE__))
#endif
