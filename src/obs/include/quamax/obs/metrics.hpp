// Metrics exporters: windowed time-series dump (JSON or CSV) and a
// Prometheus-style text exposition of a Registry snapshot.
//
// write_metrics_file is the `--metrics FILE` / QUAMAX_METRICS backend the
// serving binaries share: it writes the finalized WindowedCollector's
// per-window series, per-device duty-cycle/energy accounting, totals, and
// the SLO breach summary.  A `.csv` suffix selects the flat CSV time
// series (one row per window — plots straight into any spreadsheet);
// anything else gets the structured JSON ("quamax-metrics-v1" schema, what
// tools/metrics_check.py validates).  Alongside either, a Prometheus text
// exposition of the collector's Registry snapshot is written to
// FILE + ".prom".
//
// Exporters never touch stdout (serving binaries byte-diff their stdout in
// CI) and format doubles with %.17g so every number round-trips exactly —
// the offline validator re-adds window counts against digest totals and
// only exact values make that an equality check.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "quamax/obs/registry.hpp"
#include "quamax/obs/slo.hpp"
#include "quamax/obs/window.hpp"

namespace quamax::obs {

/// Structured JSON dump (schema "quamax-metrics-v1"): config, totals,
/// windows[], devices[], slos[] (with per-alert detail).  Requires a
/// finalized collector.
void write_metrics_json(const WindowedCollector& collector,
                        const std::vector<SloReport>& slos, std::ostream& out);

/// Flat CSV time series: header row + one row per window.  Device and SLO
/// detail are JSON-only; CSV is the quick-plot format.
void write_metrics_csv(const WindowedCollector& collector, std::ostream& out);

/// Prometheus text exposition (one `# TYPE` line + sample per metric;
/// sketches expand to _count/_sum/_min/_max plus p50/p95/p99 quantile
/// samples).  Registry iteration is name-sorted, so the output is
/// byte-stable.
void write_prometheus(const Registry& registry, std::ostream& out);

/// The shared `--metrics FILE` backend: writes JSON (or CSV when `path`
/// ends in ".csv") to `path` and the Prometheus exposition of the
/// collector's Registry snapshot (plus `extra`, merged in when non-null)
/// to `path` + ".prom".  Returns false if either file cannot be written.
bool write_metrics_file(const WindowedCollector& collector,
                        const std::vector<SloReport>& slos,
                        const std::string& path,
                        const Registry* extra = nullptr);

}  // namespace quamax::obs
