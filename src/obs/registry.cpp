#include "quamax/obs/registry.hpp"

namespace quamax::obs {

void Registry::merge(const Registry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, sk] : other.sketches_) sketches_[name].merge(sk);
}

}  // namespace quamax::obs
