#include "quamax/obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>

namespace quamax::obs {
namespace {

/// Doubles are written with %.17g so the JSON round-trips the exact binary
/// value — the round-trip CTest re-adds span durations and compares against
/// the virtual-clock total, which only works if nothing is rounded away.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {
    out_ << "{\"traceEvents\":[";
  }
  void emit(const std::string& body) {
    if (!first_) out_ << ",";
    first_ = false;
    out_ << "\n" << body;
  }
  void finish() { out_ << "\n]}\n"; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

std::string meta_thread_name(int tid, const std::string& name) {
  return "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(tid) + ",\"args\":{\"name\":\"" + escaped(name) +
         "\"}}";
}

std::string slice(const std::string& name, int tid, double ts, double dur,
                  const std::string& args) {
  std::string s = "{\"name\":\"" + escaped(name) +
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
                  ",\"ts\":" + num(ts) + ",\"dur\":" + num(dur);
  if (!args.empty()) s += ",\"args\":{" + args + "}";
  return s + "}";
}

}  // namespace

void write_chrome_trace(const TraceLog& log, std::ostream& out) {
  EventWriter w(out);

  int max_device = -1;
  for (const auto& wave : log.waves())
    if (wave.device > max_device) max_device = wave.device;
  for (const auto& down : log.downs())
    if (down.device > max_device) max_device = down.device;

  // Track metadata: tid 0 = arrivals, tid 1+d = modeled device d, and (only
  // when alerts were injected) one "slo alerts" track after the devices.
  w.emit(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"quamax virtual clock\"}}");
  w.emit(meta_thread_name(0, "arrivals"));
  for (int d = 0; d <= max_device; ++d)
    w.emit(meta_thread_name(1 + d, "device " + std::to_string(d)));
  const int alert_tid = 2 + max_device;
  if (!log.alerts().empty())
    w.emit(meta_thread_name(alert_tid, "slo alerts"));

  // Arrival track: one instant per submit and per drop, plus the flow
  // origin ("s") for each job at its submit time.
  for (const auto& e : log.submits()) {
    const std::string name = "job " + std::to_string(e.job_id) + " submit";
    w.emit("{\"name\":\"" + escaped(name) +
           "\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"t\",\"ts\":" +
           num(e.submit_us) + ",\"args\":{\"job\":" + std::to_string(e.job_id) +
           ",\"user\":" + std::to_string(e.user) +
           ",\"direction\":" + std::to_string(e.direction) +
           ",\"deadline_us\":" + num(e.deadline_us) + "}}");
    w.emit("{\"name\":\"job " + std::to_string(e.job_id) +
           "\",\"cat\":\"job\",\"ph\":\"s\",\"id\":" +
           std::to_string(e.job_id) + ",\"pid\":1,\"tid\":0,\"ts\":" +
           num(e.submit_us) + "}");
  }
  for (const auto& e : log.drops()) {
    w.emit("{\"name\":\"job " + std::to_string(e.job_id) +
           " drop\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"t\",\"ts\":" +
           num(e.drop_us) + ",\"args\":{\"job\":" + std::to_string(e.job_id) +
           ",\"deadline_us\":" + num(e.deadline_us) + ",\"mid_flight\":" +
           (e.mid_flight ? "true" : "false") + "}}");
  }
  // Fault-injection instants share the arrival track: retries (a failed
  // wave's member re-queued) and fallbacks (a job degraded to the classical
  // decoder — terminal, so it also closes the job's flow arrow budget).
  for (const auto& e : log.retries()) {
    w.emit("{\"name\":\"job " + std::to_string(e.job_id) +
           " retry\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"t\",\"ts\":" +
           num(e.fail_us) + ",\"args\":{\"job\":" + std::to_string(e.job_id) +
           ",\"wave\":" + std::to_string(e.wave_id) +
           ",\"device\":" + std::to_string(e.device) +
           ",\"ready_us\":" + num(e.ready_us) +
           ",\"retry\":" + std::to_string(e.retry) + "}}");
  }
  for (const auto& e : log.fallbacks()) {
    w.emit("{\"name\":\"job " + std::to_string(e.job_id) +
           " fallback\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"t\",\"ts\":" +
           num(e.fallback_us) +
           ",\"args\":{\"job\":" + std::to_string(e.job_id) +
           ",\"direction\":" + std::to_string(e.direction) +
           ",\"deadline_us\":" + num(e.deadline_us) +
           ",\"bit_errors\":" + std::to_string(e.bit_errors) +
           ",\"num_bits\":" + std::to_string(e.num_bits) +
           ",\"mid_flight\":" + (e.mid_flight ? "true" : "false") + "}}");
  }
  // Outage windows as slices on the device tracks (paired Up events are
  // redundant with the window bounds the Down event already carries, so the
  // slice is drawn from Down alone and Up stays a queryable log entry).
  for (const auto& e : log.downs()) {
    w.emit(slice("outage", 1 + e.device, e.down_us, e.up_us - e.down_us,
                 "\"device\":" + std::to_string(e.device) +
                     ",\"up_us\":" + num(e.up_us)));
  }

  // Device tracks: each wave is a slice with nested program/anneal/readout
  // children.  Children share the parent's tid and nest because their
  // [ts, ts+dur] ranges tile the parent's exactly.
  for (const auto& v : log.waves()) {
    const int tid = 1 + v.device;
    const std::string wave_args =
        "\"wave\":" + std::to_string(v.wave_id) +
        ",\"device\":" + std::to_string(v.device) +
        ",\"warm\":" + (v.warm ? std::string("true") : std::string("false")) +
        ",\"num_anneals\":" + std::to_string(v.num_anneals) +
        ",\"num_jobs\":" + std::to_string(v.num_jobs) + ",\"policy\":\"" +
        escaped(v.policy) + "\",\"shape\":\"" + escaped(v.shape) + "\"";
    if (v.failed) {
      // A failed wave occupies the device only until its abort instant and
      // yields no program/anneal/readout decomposition.
      w.emit(slice("wave " + std::to_string(v.wave_id) + " FAILED", tid,
                   v.dispatch_us, v.fail_us - v.dispatch_us,
                   wave_args + ",\"failed\":true,\"fail_us\":" +
                       num(v.fail_us)));
      continue;
    }
    w.emit(slice("wave " + std::to_string(v.wave_id), tid, v.dispatch_us,
                 v.completion_us - v.dispatch_us, wave_args));
    w.emit(slice("program", tid, v.dispatch_us,
                 v.program_end_us - v.dispatch_us, ""));
    w.emit(slice("anneal", tid, v.program_end_us,
                 v.readout_start_us - v.program_end_us,
                 "\"num_anneals\":" + std::to_string(v.num_anneals) +
                     ",\"warm\":" +
                     (v.warm ? std::string("true") : std::string("false"))));
    w.emit(slice("readout", tid, v.readout_start_us,
                 v.completion_us - v.readout_start_us, ""));
  }

  // Flow terminators: each dispatched job's arrow lands on its wave slice
  // ("bp":"e" binds to the enclosing slice at that timestamp).
  for (const auto& e : log.dispatches()) {
    w.emit("{\"name\":\"job " + std::to_string(e.job_id) +
           "\",\"cat\":\"job\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" +
           std::to_string(e.job_id) + ",\"pid\":1,\"tid\":" +
           std::to_string(1 + e.device) + ",\"ts\":" + num(e.dispatch_us) +
           ",\"args\":{\"wave\":" + std::to_string(e.wave_id) +
           ",\"completion_us\":" + num(e.completion_us) +
           ",\"num_bits\":" + std::to_string(e.num_bits) + "}}");
  }

  // SLO alert track: one instant per burn-rate breach (obs::SloMonitor),
  // carrying the breaching window and the short/long-window values so the
  // dip is inspectable next to the device timelines.
  for (const auto& e : log.alerts()) {
    w.emit("{\"name\":\"slo-alert " + escaped(e.slo) +
           "\",\"ph\":\"i\",\"pid\":1,\"tid\":" + std::to_string(alert_tid) +
           ",\"s\":\"t\",\"ts\":" + num(e.start_us) +
           ",\"args\":{\"slo\":\"" + escaped(e.slo) +
           "\",\"window\":" + std::to_string(e.window) +
           ",\"window_end_us\":" + num(e.end_us) +
           ",\"value\":" + num(e.value) +
           ",\"long_value\":" + num(e.long_value) +
           ",\"threshold\":" + num(e.threshold) +
           ",\"burn\":" + num(e.burn) + "}}");
  }

  w.finish();
}

bool write_chrome_trace_file(const TraceLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_chrome_trace(log, out);
  return out.good();
}

}  // namespace quamax::obs
