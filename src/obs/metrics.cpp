#include "quamax/obs/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace quamax::obs {
namespace {

/// %.17g, same rationale as the trace exporter: the validator does exact
/// arithmetic on these values.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_sketch_json(const QuantileSketch& s, std::ostream& out) {
  out << "{\"count\":" << s.count() << ",\"mean\":" << num(s.mean())
      << ",\"min\":" << num(s.min()) << ",\"max\":" << num(s.max())
      << ",\"p50\":" << num(s.quantile(50.0))
      << ",\"p95\":" << num(s.quantile(95.0))
      << ",\"p99\":" << num(s.quantile(99.0)) << "}";
}

const char* kind_name(SloSpec::Kind kind) {
  return kind == SloSpec::Kind::kMissRate ? "miss_rate" : "p99";
}

}  // namespace

void write_metrics_json(const WindowedCollector& collector,
                        const std::vector<SloReport>& slos,
                        std::ostream& out) {
  const auto& t = collector.totals();
  out << "{\n\"schema\":\"quamax-metrics-v1\",\n"
      << "\"window_us\":" << num(collector.width_us())
      << ",\"horizon_us\":" << num(collector.horizon_us())
      << ",\"num_windows\":" << collector.windows().size()
      << ",\"num_devices\":" << collector.num_devices() << ",\n";

  out << "\"totals\":{"
      << "\"submitted\":" << t.submitted << ",\"completed\":" << t.completed
      << ",\"fallbacks\":" << t.fallbacks << ",\"dropped\":" << t.dropped
      << ",\"failed\":" << t.failed << ",\"retries\":" << t.retries
      << ",\"missed\":" << t.missed << ",\"resolved\":" << t.resolved
      << ",\"waves\":" << t.waves << ",\"failed_waves\":" << t.failed_waves
      << ",\"bits\":" << t.bits
      << ",\"wave_busy_us\":" << num(t.wave_busy_us)
      << ",\"energy_joules\":" << num(t.energy_j)
      << ",\"joules_per_bit\":" << num(t.joules_per_bit) << ",\"latency_us\":";
  write_sketch_json(t.latency, out);
  out << "},\n";

  out << "\"windows\":[";
  bool first = true;
  for (const auto& w : collector.windows()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"index\":" << w.index << ",\"start_us\":" << num(w.start_us)
        << ",\"end_us\":" << num(w.end_us) << ",\"submitted\":" << w.submitted
        << ",\"completed\":" << w.completed << ",\"fallbacks\":" << w.fallbacks
        << ",\"dropped\":" << w.dropped << ",\"failed\":" << w.failed
        << ",\"retries\":" << w.retries << ",\"missed\":" << w.missed
        << ",\"resolved\":" << w.resolved << ",\"waves\":" << w.waves
        << ",\"failed_waves\":" << w.failed_waves << ",\"bits\":" << w.bits
        << ",\"queue_depth\":" << w.queue_depth
        << ",\"busy_us\":" << num(w.busy_us)
        << ",\"outage_us\":" << num(w.outage_us)
        << ",\"energy_joules\":" << num(w.energy_j)
        << ",\"miss_rate\":" << num(w.miss_rate)
        << ",\"occupancy\":" << num(w.occupancy)
        << ",\"watts\":" << num(w.watts)
        << ",\"cum_joules_per_bit\":" << num(w.cum_joules_per_bit)
        << ",\"latency_us\":";
    write_sketch_json(w.latency, out);
    out << "}";
  }
  out << "\n],\n";

  out << "\"devices\":[";
  first = true;
  for (const auto& d : collector.devices()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"device\":" << d.device << ",\"waves\":" << d.waves
        << ",\"failed_waves\":" << d.failed_waves
        << ",\"program_us\":" << num(d.program_us)
        << ",\"anneal_us\":" << num(d.anneal_us)
        << ",\"readout_us\":" << num(d.readout_us)
        << ",\"aborted_us\":" << num(d.aborted_us)
        << ",\"outage_us\":" << num(d.outage_us)
        << ",\"idle_us\":" << num(d.idle_us)
        << ",\"busy_us\":" << num(d.busy_us())
        << ",\"energy_joules\":" << num(d.energy_j) << "}";
  }
  out << "\n],\n";

  out << "\"slos\":[";
  first = true;
  for (const auto& r : slos) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"name\":\"" << escaped(r.spec.name) << "\",\"kind\":\""
        << kind_name(r.spec.kind) << "\",\"threshold\":"
        << num(r.spec.threshold) << ",\"long_windows\":" << r.spec.long_windows
        << ",\"short_windows\":" << r.spec.short_windows
        << ",\"breached_windows\":" << r.breached_windows
        << ",\"worst_burn\":" << num(r.worst_burn) << ",\"alerts\":[";
    bool first_alert = true;
    for (const auto& a : r.alerts) {
      if (!first_alert) out << ",";
      first_alert = false;
      out << "{\"window\":" << a.window << ",\"start_us\":" << num(a.start_us)
          << ",\"end_us\":" << num(a.end_us) << ",\"value\":" << num(a.value)
          << ",\"long_value\":" << num(a.long_value)
          << ",\"burn\":" << num(a.burn) << "}";
    }
    out << "]}";
  }
  out << "\n]\n}\n";
}

void write_metrics_csv(const WindowedCollector& collector, std::ostream& out) {
  out << "index,start_us,end_us,submitted,completed,fallbacks,dropped,failed,"
         "retries,missed,resolved,waves,failed_waves,bits,queue_depth,"
         "busy_us,outage_us,energy_joules,miss_rate,occupancy,watts,"
         "cum_joules_per_bit,latency_p50_us,latency_p99_us\n";
  for (const auto& w : collector.windows()) {
    out << w.index << "," << num(w.start_us) << "," << num(w.end_us) << ","
        << w.submitted << "," << w.completed << "," << w.fallbacks << ","
        << w.dropped << "," << w.failed << "," << w.retries << "," << w.missed
        << "," << w.resolved << "," << w.waves << "," << w.failed_waves << ","
        << w.bits << "," << w.queue_depth << "," << num(w.busy_us) << ","
        << num(w.outage_us) << "," << num(w.energy_j) << ","
        << num(w.miss_rate) << "," << num(w.occupancy) << "," << num(w.watts)
        << "," << num(w.cum_joules_per_bit) << ","
        << num(w.latency.quantile(50.0)) << ","
        << num(w.latency.quantile(99.0)) << "\n";
  }
}

void write_prometheus(const Registry& registry, std::ostream& out) {
  for (const auto& [name, value] : registry.counters()) {
    out << "# TYPE " << name << " counter\n" << name << " " << value << "\n";
  }
  for (const auto& [name, value] : registry.gauges()) {
    out << "# TYPE " << name << " gauge\n" << name << " " << num(value)
        << "\n";
  }
  for (const auto& [name, sketch] : registry.sketches()) {
    out << "# TYPE " << name << " summary\n";
    out << name << "{quantile=\"0.5\"} " << num(sketch.quantile(50.0)) << "\n";
    out << name << "{quantile=\"0.95\"} " << num(sketch.quantile(95.0))
        << "\n";
    out << name << "{quantile=\"0.99\"} " << num(sketch.quantile(99.0))
        << "\n";
    out << name << "_count " << sketch.count() << "\n";
    out << name << "_sum " << num(sketch.mean() *
                                  static_cast<double>(sketch.count()))
        << "\n";
    out << name << "_min " << num(sketch.min()) << "\n";
    out << name << "_max " << num(sketch.max()) << "\n";
  }
}

bool write_metrics_file(const WindowedCollector& collector,
                        const std::vector<SloReport>& slos,
                        const std::string& path, const Registry* extra) {
  {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    const bool csv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv) {
      write_metrics_csv(collector, out);
    } else {
      write_metrics_json(collector, slos, out);
    }
    if (!out.good()) return false;
  }
  Registry registry;
  collector.export_registry(registry);
  for (const auto& r : slos) {
    const std::string base =
        "quamax_slo_" + std::to_string(&r - slos.data()) + "_";
    registry.gauge(base + "breached_windows") =
        static_cast<double>(r.breached_windows);
    registry.gauge(base + "worst_burn") = r.worst_burn;
  }
  if (extra != nullptr) registry.merge(*extra);
  std::ofstream prom(path + ".prom", std::ios::trunc);
  if (!prom) return false;
  write_prometheus(registry, prom);
  return prom.good();
}

}  // namespace quamax::obs
