// Classical fallback decoding for jobs the annealing path could not serve
// (retry budget exhausted, shape no longer embeddable, or deadline-doomed).
//
// The fallback runs the existing detect:: linear decoders on the job's own
// channel use — zero RNG, driver thread, virtual-clock-free — so a degraded
// job completes instantly at classical BER instead of missing its deadline.
// Downlink jobs degrade to plain zero-forcing precoding (the v = 0
// perturbation on the same channel/payload/noise draw), the paper's §5.2
// baseline; MMSE mode shares that downlink baseline since vpp:: models no
// regularized precoder.
#pragma once

#include "quamax/fault/plan.hpp"
#include "quamax/serve/job.hpp"

namespace quamax::fault {

/// Solution quality of a classical fallback decode — slots directly into
/// JobRecord::{bit_errors, num_bits}.
struct ClassicalDecode {
  std::size_t bit_errors = 0;
  std::size_t num_bits = 0;
};

/// Decodes `job` with the classical chain selected by `mode` (must not be
/// kNone).  Deterministic: a pure function of the job's stored instance.
ClassicalDecode classical_decode(const serve::CellJob& job, FallbackMode mode);

}  // namespace quamax::fault
