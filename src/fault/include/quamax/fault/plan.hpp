// quamax::fault — deterministic fault schedules for the serving stack
// (ROADMAP north star: "handles as many scenarios as you can imagine";
// availability is the question Kasi et al.'s NextG feasibility analysis
// raises for a QA-backed C-RAN, and the hybrid classical-quantum
// structures line of work argues for a classical fallback path beside the
// annealer).
//
// The paper's deployment story assumes an always-healthy annealer.  A
// production centralized RAN must keep decoding cells when chips drop out,
// anneals or readouts fail, or a chip's defect map grows mid-run.  A
// FaultPlan scripts exactly those events on the VIRTUAL clock, so a faulty
// run is as reproducible as a healthy one:
//
//   * OutageWindow  — device d is down for [start_us, end_us): waves in
//     flight when the outage starts are requeued, and no wave dispatches on
//     d until the window closes (sched::Scheduler defers the device).
//   * DefectGrowth — at time_us, device d's defect map grows by `qubits`
//     (paper §3.3's fabrication faults, now appearing at runtime): waves in
//     flight fail, the device's embedding cache is invalidated (including
//     try_capacity negative entries), and jobs whose shape no longer embeds
//     anywhere degrade to the classical fallback (or fail).
//   * anneal_failure_prob / readout_failure_prob — per-wave injected
//     failures, drawn from a DEDICATED RNG stream keyed by the plan's own
//     seed and the wave id.  The fault family never touches the decode or
//     warm-start key families, so the fault-free path stays bit-compatible
//     with history, and toggling one probability never shifts the other's
//     draws.
//
// Every fault decision is a pure function of (plan, wave id, virtual-clock
// schedule): faulty runs keep the v2 determinism contract — bit-identical
// at any --threads/--replicas/poll cadence per device count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "quamax/chimera/graph.hpp"

namespace quamax::fault {

/// Device `device` is unavailable for [start_us, end_us) on the virtual
/// clock.  Windows may overlap (the union is what counts); end_us must be
/// strictly greater than start_us.
struct OutageWindow {
  std::size_t device = 0;
  double start_us = 0.0;
  double end_us = 0.0;
};

/// Device `device`'s defect map grows by `qubits` at time_us: the qubits
/// are disabled on top of whatever faults the chip already carried.
struct DefectGrowth {
  std::size_t device = 0;
  double time_us = 0.0;
  std::vector<chimera::Qubit> qubits;
};

/// Which classical decoder serves jobs the annealing path could not
/// (ServiceConfig::fallback).  kNone preserves the historical behavior:
/// a terminally failed job is simply lost (a deadline miss).
enum class FallbackMode : std::uint8_t { kNone, kZf, kMmse };

/// Parses "none" / "zf" / "mmse"; throws InvalidArgument otherwise.
FallbackMode parse_fallback_mode(const std::string& text);
const char* to_string(FallbackMode mode);

struct FaultPlan {
  std::vector<OutageWindow> outages;
  std::vector<DefectGrowth> growths;
  /// Probability that a wave's anneal batch fails (the wave aborts when its
  /// anneal span ends, before readout).  Drawn per wave id from the
  /// dedicated fault stream.
  double anneal_failure_prob = 0.0;
  /// Probability that a wave's readout fails (the wave aborts at its
  /// completion instant with no samples).  Independent of the anneal draw:
  /// both uniforms are always consumed, so enabling one probability never
  /// shifts the other's stream.
  double readout_failure_prob = 0.0;
  /// Root of the fault-injection stream family — deliberately SEPARATE from
  /// SchedConfig::seed so attaching a plan never re-keys the decode or
  /// warm-start streams.
  std::uint64_t seed = 0xFA017;

  /// True when the plan schedules nothing and injects nothing — the
  /// scheduler then takes the historical fault-free path bit-for-bit.
  bool empty() const noexcept {
    return outages.empty() && growths.empty() && anneal_failure_prob <= 0.0 &&
           readout_failure_prob <= 0.0;
  }

  /// Validates window ordering, probability ranges, and device indices
  /// against a pool of `num_devices`.  Throws InvalidArgument.
  void validate(std::size_t num_devices) const;
};

/// Parses a fault-plan text file (the --fault-plan / QUAMAX_FAULT_PLAN
/// format).  One directive per line; '#' starts a comment:
///
///   outage DEVICE START_US END_US
///   defects DEVICE TIME_US QUBIT [QUBIT...]
///   annealfail PROB
///   readoutfail PROB
///   seed SEED
///
/// Throws InvalidArgument on unreadable files or malformed directives.
FaultPlan load_fault_plan(const std::string& path);

/// A deterministic fault storm for availability experiments: each of
/// `devices` alternates up/down periods (exponential lengths, mean outage
/// `mean_outage_us`, mean uptime scaled so the long-run downtime fraction
/// is `downtime_fraction`) across [0, horizon_us).  Pure function of its
/// arguments — the bench's 25%-downtime storm is storm_plan(..., 0.25, ...).
FaultPlan storm_plan(std::size_t devices, double horizon_us,
                     double downtime_fraction, double mean_outage_us,
                     std::uint64_t seed);

/// Total scheduled downtime of `device` over [0, horizon_us) (overlapping
/// windows are unioned) — the denominator check for availability sweeps.
double scheduled_downtime_us(const FaultPlan& plan, std::size_t device,
                             double horizon_us);

}  // namespace quamax::fault
