#include "quamax/fault/fallback.hpp"

#include "quamax/common/error.hpp"
#include "quamax/detect/linear.hpp"
#include "quamax/vpp/precode.hpp"
#include "quamax/wireless/channel.hpp"

namespace quamax::fault {

ClassicalDecode classical_decode(const serve::CellJob& job, FallbackMode mode) {
  if (mode == FallbackMode::kNone)
    throw InvalidArgument("classical_decode: fallback mode is none");
  ClassicalDecode out;
  if (job.downlink()) {
    const vpp::PrecodeInstance& instance = job.precode();
    out.bit_errors = vpp::zero_forcing_bit_errors(instance);
    out.num_bits = instance.tx_bits.size();
  } else {
    const wireless::ChannelUse& use = job.uplink().use;
    const wireless::BitVec decoded = mode == FallbackMode::kMmse
                                         ? detect::mmse_detect(use)
                                         : detect::zero_forcing_detect(use);
    out.bit_errors = wireless::count_bit_errors(decoded, use.tx_bits);
    out.num_bits = use.tx_bits.size();
  }
  return out;
}

}  // namespace quamax::fault
