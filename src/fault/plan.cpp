#include "quamax/fault/plan.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "quamax/common/error.hpp"
#include "quamax/common/rng.hpp"

namespace quamax::fault {

FallbackMode parse_fallback_mode(const std::string& text) {
  if (text == "none") return FallbackMode::kNone;
  if (text == "zf") return FallbackMode::kZf;
  if (text == "mmse") return FallbackMode::kMmse;
  throw InvalidArgument("fallback mode must be none|zf|mmse, got '" + text +
                        "'");
}

const char* to_string(FallbackMode mode) {
  switch (mode) {
    case FallbackMode::kNone: return "none";
    case FallbackMode::kZf: return "zf";
    case FallbackMode::kMmse: return "mmse";
  }
  return "?";
}

void FaultPlan::validate(std::size_t num_devices) const {
  for (const auto& w : outages) {
    if (w.device >= num_devices)
      throw InvalidArgument("FaultPlan: outage device out of range");
    if (!(w.end_us > w.start_us) || w.start_us < 0.0)
      throw InvalidArgument("FaultPlan: outage window needs 0 <= start < end");
  }
  for (const auto& g : growths) {
    if (g.device >= num_devices)
      throw InvalidArgument("FaultPlan: defect growth device out of range");
    if (g.time_us < 0.0)
      throw InvalidArgument("FaultPlan: defect growth time must be >= 0");
    if (g.qubits.empty())
      throw InvalidArgument("FaultPlan: defect growth lists no qubits");
  }
  if (anneal_failure_prob < 0.0 || anneal_failure_prob > 1.0 ||
      readout_failure_prob < 0.0 || readout_failure_prob > 1.0)
    throw InvalidArgument("FaultPlan: failure probabilities must be in [0,1]");
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("fault plan: cannot open '" + path + "'");
  FaultPlan plan;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line
    const auto fail = [&](const char* what) {
      throw InvalidArgument("fault plan " + path + ":" +
                            std::to_string(lineno) + ": " + what);
    };
    if (word == "outage") {
      OutageWindow w;
      if (!(ls >> w.device >> w.start_us >> w.end_us))
        fail("expected 'outage DEVICE START_US END_US'");
      plan.outages.push_back(w);
    } else if (word == "defects") {
      DefectGrowth g;
      if (!(ls >> g.device >> g.time_us))
        fail("expected 'defects DEVICE TIME_US QUBIT...'");
      chimera::Qubit q = 0;
      while (ls >> q) g.qubits.push_back(q);
      if (g.qubits.empty()) fail("defect growth lists no qubits");
      plan.growths.push_back(std::move(g));
    } else if (word == "annealfail") {
      if (!(ls >> plan.anneal_failure_prob)) fail("expected 'annealfail P'");
    } else if (word == "readoutfail") {
      if (!(ls >> plan.readout_failure_prob)) fail("expected 'readoutfail P'");
    } else if (word == "seed") {
      if (!(ls >> plan.seed)) fail("expected 'seed S'");
    } else {
      fail("unknown directive");
    }
  }
  return plan;
}

FaultPlan storm_plan(std::size_t devices, double horizon_us,
                     double downtime_fraction, double mean_outage_us,
                     std::uint64_t seed) {
  if (devices == 0) throw InvalidArgument("storm_plan: devices must be > 0");
  if (downtime_fraction <= 0.0 || downtime_fraction >= 1.0)
    throw InvalidArgument("storm_plan: downtime_fraction must be in (0,1)");
  if (mean_outage_us <= 0.0 || horizon_us <= 0.0)
    throw InvalidArgument("storm_plan: horizon and mean outage must be > 0");
  FaultPlan plan;
  plan.seed = seed;
  const double mean_up_us =
      mean_outage_us * (1.0 - downtime_fraction) / downtime_fraction;
  for (std::size_t d = 0; d < devices; ++d) {
    Rng rng = Rng::for_stream(seed, d);
    const auto exp_draw = [&](double mean) {
      // uniform() is in [0,1); 1-u is in (0,1], so the log is finite.
      return -mean * std::log(1.0 - rng.uniform());
    };
    // Random phase into the up/down cycle so devices don't all start "just
    // rebooted": begin with a partial uptime.
    double t = exp_draw(mean_up_us) * rng.uniform();
    while (t < horizon_us) {
      const double down = exp_draw(mean_outage_us);
      plan.outages.push_back({d, t, std::min(t + down, horizon_us)});
      t += down + exp_draw(mean_up_us);
    }
  }
  return plan;
}

double scheduled_downtime_us(const FaultPlan& plan, std::size_t device,
                             double horizon_us) {
  std::vector<std::pair<double, double>> spans;
  for (const auto& w : plan.outages) {
    if (w.device != device || w.start_us >= horizon_us) continue;
    spans.emplace_back(w.start_us, std::min(w.end_us, horizon_us));
  }
  std::sort(spans.begin(), spans.end());
  double total = 0.0;
  double cursor = 0.0;
  for (const auto& [s, e] : spans) {
    const double lo = std::max(s, cursor);
    if (e > lo) {
      total += e - lo;
      cursor = e;
    }
  }
  return total;
}

}  // namespace quamax::fault
