#include "quamax/sched/device_set.hpp"

#include <algorithm>

#include "quamax/common/error.hpp"

namespace quamax::sched {

std::vector<DeviceSpec> uniform_devices(const anneal::AnnealerConfig& base,
                                        std::size_t count) {
  require(count >= 1, "uniform_devices: need at least one device");
  std::vector<DeviceSpec> specs(count);
  // Device 0 carries the base config's own chip verbatim so a 1-device
  // DeviceSet reproduces a plain ChimeraAnnealer's graph exactly.
  for (DeviceSpec& spec : specs) {
    spec.defects = base.chip_defects;
    spec.defect_seed = base.chip_seed;
    spec.disabled = base.chip_disabled;
  }
  return specs;
}

std::vector<chimera::Qubit> dead_row_fault_map(const chimera::ChimeraGraph& chip,
                                               std::size_t stride) {
  require(stride >= 2, "dead_row_fault_map: stride must be >= 2");
  std::vector<chimera::Qubit> dead;
  for (std::size_t row = stride - 1; row < chip.grid_size(); row += stride)
    for (std::size_t col = 0; col < chip.grid_size(); ++col)
      for (int side = 0; side < 2; ++side)
        for (int k = 0; k < static_cast<int>(chip.shore_size()); ++k)
          dead.push_back(chip.qubit_id(row, col, side, k));
  return dead;
}

DeviceSet::DeviceSet(const anneal::AnnealerConfig& base,
                     std::vector<DeviceSpec> specs)
    : base_(base), specs_(std::move(specs)) {
  require(!specs_.empty(), "DeviceSet: need at least one device");
  caches_.reserve(specs_.size());
  for (std::size_t d = 0; d < specs_.size(); ++d) {
    const DeviceSpec& spec = specs_[d];
    chimera::ChimeraGraph graph =
        spec.defects == 0
            ? chimera::ChimeraGraph(base_.chip_size, base_.chip_shore)
            : chimera::ChimeraGraph::with_defects(base_.chip_size, spec.defects,
                                                  spec.defect_seed);
    require(spec.defects == 0 || base_.chip_shore == 4,
            "DeviceSet: random defect masks are modeled for the shore-4 chip");
    for (const chimera::Qubit q : spec.disabled) {
      require(q < graph.num_qubits(),
              "DeviceSet: disabled qubit id outside the chip");
      graph.disable_qubit(q);
    }
    // Device-affine caches with topology dedup: an identical chip reuses an
    // earlier device's cache (placements depend only on the topology), so a
    // uniform pool compiles each shape once, like PR 3's single shared cache.
    std::shared_ptr<chimera::EmbeddingCache> cache;
    for (std::size_t e = 0; e < d; ++e) {
      if (caches_[e]->graph().same_topology(graph)) {
        cache = caches_[e];
        break;
      }
    }
    if (cache == nullptr)
      cache = std::make_shared<chimera::EmbeddingCache>(std::move(graph));
    caches_.push_back(std::move(cache));
  }
}

anneal::AnnealerConfig DeviceSet::worker_config(std::size_t device) const {
  const DeviceSpec& spec = specs_.at(device);
  anneal::AnnealerConfig cfg = base_;
  cfg.chip_defects = spec.defects;
  cfg.chip_seed = spec.defect_seed;
  cfg.chip_disabled = spec.disabled;
  cfg.num_threads = 1;  // the scheduler parallelizes ACROSS waves
  return cfg;
}

void DeviceSet::grow_defects(std::size_t device,
                             const std::vector<chimera::Qubit>& qubits) {
  require(device < size(), "grow_defects: device out of range");
  require(!qubits.empty(), "grow_defects: no qubits to disable");
  chimera::ChimeraGraph graph = caches_.at(device)->graph();
  for (const chimera::Qubit q : qubits) {
    require(q < graph.num_qubits(),
            "grow_defects: disabled qubit id outside the chip");
    graph.disable_qubit(q);
  }
  // worker_config must rebuild future workers on the grown fault list.
  DeviceSpec& spec = specs_.at(device);
  spec.disabled.insert(spec.disabled.end(), qubits.begin(), qubits.end());
  // Break topology sharing before invalidating: other devices still have
  // the OLD chip, so they must keep the old cache (and its placements).
  bool shared = false;
  for (std::size_t e = 0; e < size(); ++e) {
    if (e != device && caches_[e] == caches_[device]) {
      shared = true;
      break;
    }
  }
  if (shared)
    caches_[device] = std::make_shared<chimera::EmbeddingCache>(std::move(graph));
  else
    caches_[device]->invalidate(std::move(graph));
}

std::size_t DeviceSet::max_capacity(std::size_t shape) {
  std::size_t best = 0;
  for (std::size_t d = 0; d < size(); ++d)
    best = std::max(best, capacity(d, shape));
  return best;
}

}  // namespace quamax::sched
