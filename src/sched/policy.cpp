#include "quamax/sched/policy.hpp"

#include "quamax/common/error.hpp"

namespace quamax::sched {

QueuePolicy parse_queue_policy(const std::string& text) {
  if (text == "fifo") return QueuePolicy::kFifo;
  if (text == "edf") return QueuePolicy::kEdf;
  if (text == "slack") return QueuePolicy::kSlack;
  throw InvalidArgument(
      "--queue-policy / QUAMAX_QUEUE_POLICY: expected fifo, edf, or slack, "
      "got '" +
      text + "'");
}

std::string to_string(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo: return "fifo";
    case QueuePolicy::kEdf: return "edf";
    case QueuePolicy::kSlack: return "slack";
  }
  return "fifo";
}

}  // namespace quamax::sched
