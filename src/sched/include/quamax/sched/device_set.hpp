// The modeled QA device pool behind the scheduler (paper §2/§7; Kasi et
// al.'s multi-annealer data center, arXiv:2109.01465).
//
// PR 3's DecodeService already time-shared `num_devices` interchangeable
// processors on the virtual clock; real annealing data centers are not
// interchangeable.  Every fabricated chip carries its own defect map (the
// 2000Q of the paper lost 17 of 2,048 qubits), and a shape that tiles one
// chip's working subgraph may not embed at all on a heavily faulted
// neighbor.  DeviceSet models exactly that: each device owns
//
//   * a ChimeraGraph built from the shared base chip plus its OWN DeviceSpec
//     defect map (random draw and/or explicit fault list), and
//   * a device-affine chimera::EmbeddingCache compiled against that graph —
//     devices with bit-identical topologies transparently share one cache
//     (placements are a pure function of the topology), while any
//     topology-distinct device gets its own.
//
// capacity(d, shape) is the scheduler's routing oracle: 0 means the shape
// does not embed on device d, so no wave of that shape may land there
// (shape-aware wave routing).  All lookups are deterministic functions of
// the configuration, keeping every schedule bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "quamax/anneal/annealer.hpp"
#include "quamax/chimera/embedding_cache.hpp"
#include "quamax/chimera/graph.hpp"
#include "quamax/obs/window.hpp"

namespace quamax::sched {

/// One modeled device's deviation from the base chip: `defects` random
/// disabled qubits (deterministic in `defect_seed`) plus an explicit
/// `disabled` fault list.  A default DeviceSpec inherits the base
/// configuration's chip unchanged.
struct DeviceSpec {
  std::size_t defects = 0;        ///< random disabled qubits (0 = none)
  std::uint64_t defect_seed = 7;  ///< seed of the random defect draw
  std::vector<chimera::Qubit> disabled;  ///< explicit fault map
  /// Electrical model for the obs energy accounting (arXiv 2109.01465's
  /// ~25 kW constant-draw unit by default).  Pure observability input —
  /// never read by scheduling, so it cannot perturb any digest.
  obs::DevicePower power = {};

  /// True when the spec leaves the base chip untouched.
  bool pristine() const noexcept { return defects == 0 && disabled.empty(); }
};

/// `count` identical devices, each carrying the base config's own chip
/// fields (defect count, seed, and fault list included) — the PR-3
/// interchangeable-device model as a DeviceSpec list.
std::vector<DeviceSpec> uniform_devices(const anneal::AnnealerConfig& base,
                                        std::size_t count);

/// A structured fault map for experiments: every qubit in cell rows
/// stride-1, 2*stride-1, ... of `chip`, so no `stride` consecutive working
/// cell rows remain.  A triangle clique embedding needs ceil(N/shore)
/// consecutive cell rows, so any shape with ceil(N/shore) >= stride cannot
/// place anywhere (on the shore-4 chip, stride 4 kills shape 16) while
/// smaller shapes keep most of their parallel tiling (shape 8 keeps half).
/// The single source of the invariant bench_serve_load's policy gate and
/// tests/sched_test.cpp's routing assertions both rely on.
std::vector<chimera::Qubit> dead_row_fault_map(const chimera::ChimeraGraph& chip,
                                               std::size_t stride);

class DeviceSet {
 public:
  /// Builds the per-device graphs and caches.  `base` supplies the chip
  /// grid/shore and every annealing parameter of the device workers; each
  /// spec then applies its defect map on top.  Requires >= 1 spec.
  DeviceSet(const anneal::AnnealerConfig& base, std::vector<DeviceSpec> specs);

  std::size_t size() const noexcept { return specs_.size(); }
  const DeviceSpec& spec(std::size_t device) const { return specs_.at(device); }

  /// Device `device`'s chip (the base chip with the spec's defect map).
  const chimera::ChimeraGraph& graph(std::size_t device) const {
    return caches_.at(device)->graph();
  }

  /// Device `device`'s embedding cache.  Topology-identical devices share
  /// one cache object, so a uniform pool compiles each shape exactly once.
  const std::shared_ptr<chimera::EmbeddingCache>& cache(std::size_t device) const {
    return caches_.at(device);
  }

  /// Worker configuration for annealing on device `device`: the base config
  /// with the device's chip fields and num_threads forced to 1 (the
  /// scheduler parallelizes across waves, not inside them).
  anneal::AnnealerConfig worker_config(std::size_t device) const;

  /// Jobs of `shape` one wave on device `device` can carry; 0 when the
  /// shape does not embed there (the routing predicate).
  std::size_t capacity(std::size_t device, std::size_t shape) {
    return caches_.at(device)->try_capacity(shape);
  }

  /// True when `shape` embeds on device `device`.
  bool fits(std::size_t device, std::size_t shape) {
    return capacity(device, shape) > 0;
  }

  /// Largest capacity for `shape` across the pool; 0 means NO device can
  /// serve the shape (such jobs are rejected at submission).
  std::size_t max_capacity(std::size_t shape);

  /// Mid-run defect growth (fault::DefectGrowth): disables `qubits` on
  /// device `device`'s chip and invalidates its embedding cache — positive
  /// and negative entries both, since stale placements may route through
  /// the dead qubits and stale infeasibility verdicts bound routing.  If
  /// the cache was topology-shared with another device, that device keeps
  /// the old cache untouched and `device` gets a fresh one.  Caller's
  /// responsibility: no decode may be in flight on `device` (the scheduler
  /// flushes executed waves first).
  void grow_defects(std::size_t device,
                    const std::vector<chimera::Qubit>& qubits);

 private:
  anneal::AnnealerConfig base_;
  std::vector<DeviceSpec> specs_;
  std::vector<std::shared_ptr<chimera::EmbeddingCache>> caches_;
};

}  // namespace quamax::sched
