// quamax::sched — async multi-device decode scheduler (paper §2/§7;
// ROADMAP: "multi-chip sharding", "EDF or slack-aware queue policies",
// "async streaming API").
//
// PR 3's DecodeService drained one FIFO synchronously onto interchangeable
// devices.  The Scheduler generalizes that event loop into the data-center
// shape the paper's C-RAN vision implies (and Kasi et al.'s NextG
// feasibility analysis models): RAN front-ends SUBMIT cell jobs — uplink
// detection or downlink VPP precoding (serve::CellJob) — as they arrive, a
// pool of topology-distinct QA devices (sched::DeviceSet) absorbs them, and
// completions stream back asynchronously.  Both directions compete for the
// same devices; shape-aware routing and wave packing only ever see the
// logical variable count, so mixed-direction waves of one shape are legal.
//
//   submit(job) ───► staged ──admit──► pending (policy-ordered view)
//                                         │ shape-aware routing: a wave only
//                                         ▼ lands on a device it embeds on
//                              per-device waves on the virtual clock
//                                         │
//   collect(t) ◄── decode compute (ThreadPool, per-wave RNG streams) ◄──┘
//
// The two-clock split of PR 3 is preserved exactly:
//
//   * The VIRTUAL clock advances through submit()/advance_to()/finish():
//     dispatch rounds pop the earliest-free device, admit every job released
//     by that instant, optionally shed doomed jobs (drop_late), pick the
//     policy-best job whose shape fits the device, and charge the wave
//     program_overhead_us + num_anneals * (T_a + T_p).  Rounds never run
//     past the submission horizon, so a job can never miss a wave it should
//     have joined — the async path's timeline is BIT-IDENTICAL to feeding
//     the same workload through a batch run.
//
//   * The WALL clock only pays for decode compute, executed lazily when
//     collect() needs completed waves: wave w draws all randomness from
//     Rng::for_stream(key, w) and runs on a lane-local worker built for its
//     device's chip, so records are bit-identical at any num_threads /
//     batch_replicas setting AND any submit/poll interleaving.
//
// Warm-start serving (SchedConfig::warm_start): on coherent workloads
// (serve::LoadConfig::coherence) an uplink job whose same-block predecessor
// already completed is annealed in REVERSE from the predecessor's decoded
// configuration at a reduced quota (warm_num_anneals), cutting the wave's
// virtual-clock cost.  Warm eligibility is a pure virtual-clock predicate
// and warm waves draw from their own RNG key family, so both clocks keep
// every determinism contract above (see ARCHITECTURE.md "Warm-start
// serving").
//
// serve::DecodeService delegates its dispatch to this engine; SchedClient
// (client.hpp) is the streaming front end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "quamax/anneal/annealer.hpp"
#include "quamax/anneal/warm_start.hpp"
#include "quamax/core/thread_pool.hpp"
#include "quamax/fault/plan.hpp"
#include "quamax/obs/trace.hpp"
#include "quamax/sched/device_set.hpp"
#include "quamax/sched/policy.hpp"
#include "quamax/serve/job.hpp"
#include "quamax/serve/packer.hpp"

namespace quamax::sched {

/// The serving stack's annealer defaults: the library baseline with the
/// sweep kernel switched to branch-free float32 threshold acceptance.
/// bench_serve_load's soak gate holds threshold32's miss-rate / goodput /
/// BER curves to parity with exact at paper-scale load, and the float32
/// kernel is the throughput winner on the ICE-off shared-coefficient
/// serving path.  Override via --accept-mode / QUAMAX_ACCEPT_MODE.
inline anneal::AnnealerConfig serving_annealer_defaults() {
  anneal::AnnealerConfig cfg;
  cfg.accept_mode = anneal::AcceptMode::kThreshold32;
  return cfg;
}

/// The one wave-sizing rule shared by the engine's dispatch
/// (Scheduler::effective_capacity) and the serve layer's public capacity
/// accessor (DecodeService::wave_capacity): packing off = one job per wave;
/// otherwise the chip capacity, clamped by max_wave_jobs (0 = no extra cap).
inline std::size_t clamp_wave_jobs(std::size_t chip_capacity, bool packing,
                                   std::size_t max_wave_jobs) {
  if (!packing) return 1;
  if (max_wave_jobs == 0) return chip_capacity;
  return chip_capacity < max_wave_jobs ? chip_capacity : max_wave_jobs;
}

struct SchedConfig {
  /// Chip, schedule, ICE, and replica configuration of every device worker
  /// (chip fields describe the BASE chip; DeviceSpecs refine it per device).
  /// Defaults to threshold32 acceptance (serving_annealer_defaults).
  anneal::AnnealerConfig annealer = serving_annealer_defaults();
  /// One spec per modeled device; empty means one device with the base chip.
  std::vector<DeviceSpec> devices;
  QueuePolicy policy = QueuePolicy::kFifo;
  std::size_t num_anneals = 50;     ///< N_a per wave
  double program_overhead_us = 10.0;
  bool packing = true;              ///< false = one job per wave
  std::size_t max_wave_jobs = 0;    ///< extra cap below chip capacity; 0 = none
  bool drop_late = false;           ///< shed jobs already doomed to miss
  std::size_t num_threads = 1;      ///< decode-compute lanes (0 = all cores)
  std::uint64_t seed = 0xC8A17;     ///< root of all decode RNG streams

  /// Warm-start incremental annealing across coherent subframes: an uplink
  /// job whose coherence-chain predecessor (CellJob::predecessor) was
  /// dispatched and completed — on the virtual clock — by this dispatch
  /// instant is served by a REVERSE anneal seeded from the predecessor's
  /// best decoded configuration, at the (typically much smaller)
  /// warm_num_anneals quota.  Waves are warmness-homogeneous; warm waves
  /// draw their decode randomness from a key family disjoint from the cold
  /// one, so cold-wave results never depend on the warm path's draws.
  /// Off by default: warm_start = false reproduces the historical engine
  /// bit-for-bit, coherent workload or not.
  bool warm_start = false;
  /// Reverse-schedule depth for warm waves: anneal back to
  /// beta(reverse_depth) from the seed and re-descend (see
  /// anneal::Schedule::reverse_depth).
  double warm_reverse_depth = 0.85;
  /// N_a for warm waves; 0 = use num_anneals (seed reuse without the
  /// anneal-quota cut).
  std::size_t warm_num_anneals = 0;

  /// Deterministic fault schedule (fault::FaultPlan): device outage
  /// windows, mid-run defect growth, and per-wave anneal/readout failure
  /// injection, all on the virtual clock.  nullptr — or a plan for which
  /// FaultPlan::empty() holds — reproduces the historical fault-free engine
  /// bit-for-bit: the fault path consumes no RNG (injection draws come from
  /// the plan's OWN seed via a dedicated stream family keyed by wave id,
  /// never from `seed`'s root stream) and adds no virtual-clock events.
  std::shared_ptr<const fault::FaultPlan> fault;
  /// Retry budget per job: a member of a failed wave is re-queued (policy
  /// re-sorted, earliest re-dispatch fail + retry_backoff_us) at most this
  /// many times before the fallback ladder ends it.  0 = no retries.
  std::size_t max_retries = 0;
  double retry_backoff_us = 0.0;
  /// Classical fallback (fault::classical_decode, zero RNG, driver thread):
  /// a job the annealing path cannot serve — retry budget exhausted, shape
  /// no longer embeddable after defect growth, or already doomed to miss
  /// its deadline — completes INSTANTLY at classical linear-decoder BER
  /// instead of failing or dropping.  With a fallback configured the doom
  /// sweep runs even when drop_late is off (degraded-mode guarantee: slack
  /// that cannot fit an anneal is served classically, and fallback wins
  /// over drop_late for doomed jobs).  kNone preserves historical behavior.
  fault::FallbackMode fallback = fault::FallbackMode::kNone;

  /// Optional trace sink (non-owning; nullptr = tracing off).  The engine
  /// emits job-submit / wave-dispatch / job-drop events from the
  /// virtual-clock code paths, which all run serially on the driver thread
  /// — so the sink needs no locks and the decode compute never touches it.
  /// Emission reads already-computed values only and consumes no RNG:
  /// records/waves are bit-identical with tracing on or off.
  obs::TraceSink* trace = nullptr;
};

class Scheduler {
 public:
  /// Called at each job's dispatch (or drop) with its wave completion (or
  /// drop) time — the closed-loop feedback edge DecodeService's feeds use.
  using DispatchHook =
      std::function<void(const serve::CellJob&, double completion_us)>;

  /// `devices` may share a prebuilt DeviceSet (compiled placements persist
  /// across scheduler instances); nullptr builds one from the config.
  explicit Scheduler(SchedConfig config,
                     std::shared_ptr<DeviceSet> devices = nullptr);

  const SchedConfig& config() const noexcept { return config_; }
  const std::shared_ptr<DeviceSet>& device_set() const noexcept { return devices_; }

  /// Virtual-clock cost of one COLD wave, any occupancy or device (also the
  /// conservative service estimate drop_late sweeps and the slack policy
  /// use: a job that would only survive if it drew a warm wave is treated
  /// as doomed, deterministically).
  double wave_service_us() const;

  /// Virtual-clock cost of one warm wave: program overhead plus the warm
  /// anneal quota at the (unchanged) per-anneal duration — the reverse
  /// schedule splits the same T_a between its two legs.
  double warm_wave_service_us() const;

  /// N_a actually charged/run for warm waves (warm_num_anneals, or
  /// num_anneals when 0).
  std::size_t warm_quota() const;

  void set_dispatch_hook(DispatchHook hook) { hook_ = std::move(hook); }

  /// Stages one job — either direction, implicitly converted from a
  /// DecodeJob or PrecodeJob — and advances the virtual clock to its
  /// arrival (rounds strictly before it are dispatched first).  Jobs must
  /// be submitted in non-decreasing arrival order — the scheduler cannot
  /// dispatch into a past an unseen job should have joined.  Returns the
  /// job's sequence number (the ticket index).  Throws CapacityError when
  /// no device in the pool can embed the job's shape.
  std::size_t submit(serve::CellJob job);

  /// Dispatches every round whose time lies strictly before `horizon_us`.
  /// submit() calls this implicitly; explicit calls let a driver flush the
  /// timeline up to a known-quiet instant (e.g. the feed's next release).
  void advance_to(double horizon_us);

  /// Unbounded-horizon variant for closed loops stalled on feedback: runs
  /// rounds until at least one job dispatches or drops (firing the hook),
  /// returning false when no work remains.
  bool advance_until_dispatch();

  /// Runs every remaining round and executes every wave's decode; after
  /// this, records() is complete and final.
  void finish();

  /// Latest submitted arrival — the streaming client's notion of "now".
  double now_us() const noexcept { return now_us_; }
  std::size_t num_submitted() const noexcept { return jobs_.size(); }

  /// Executes the decode of every wave completed by `t` and returns the
  /// sequence numbers of jobs finalized by `t` (wave completion or drop
  /// time <= t) that no earlier collect() returned, ordered by
  /// (completion time, sequence).  The per-seq records are final once
  /// returned.  Pass +infinity after finish() to collect everything.
  std::vector<std::size_t> collect(double t);

  /// Per-job records indexed by sequence number.  Timing fields are final
  /// once the job's wave is dispatched; decode fields once it executes.
  const std::vector<serve::JobRecord>& records() const noexcept { return records_; }
  /// Dispatched waves in dispatch order (wave w decodes from stream w).
  const std::vector<serve::Wave>& waves() const noexcept { return waves_; }

 private:
  /// kInFlight: member of a wave pre-decided to fail — in limbo between the
  /// wave's dispatch and the kWaveFail event at its abort instant, when the
  /// retry/fallback ladder resolves it.  kFailed/kFallback are terminal.
  enum class JobState : std::uint8_t {
    kQueued,
    kDispatched,
    kDropped,
    kInFlight,
    kFailed,
    kFallback
  };
  /// kDeferred: the popped device sits inside an outage window; it was
  /// re-queued at the window's end without advancing any other state.
  enum class Round {
    kNoWork,
    kHorizon,
    kParked,
    kSwept,
    kDispatched,
    kDeferred
  };
  /// Virtual-clock fault timeline entries, processed in (time, insertion)
  /// order by the first round whose effective time reaches them.  Outage
  /// start/end entries are trace-only (scheduling reads the window list
  /// directly); growth applies the defect map; wave-fail runs the
  /// retry/fallback ladder for the failed wave's members.
  enum class FaultKind : std::uint8_t {
    kOutageStart,
    kOutageEnd,
    kGrowth,
    kWaveFail
  };
  struct FaultEvent {
    double t_us = 0.0;
    std::size_t order = 0;  ///< insertion tie-break at equal times
    FaultKind kind = FaultKind::kOutageStart;
    std::size_t index = 0;  ///< outage/growth index in the plan, or wave id
    bool operator>(const FaultEvent& other) const {
      if (t_us != other.t_us) return t_us > other.t_us;
      return order > other.order;
    }
  };

  Round round(double horizon_us);
  void admit_up_to(double t_us);
  void sweep_doomed(double t_free_us);
  /// Pops and applies every fault event with time <= t_us.  Returns true
  /// when a job was FINALIZED (fallback or terminal failure) — progress a
  /// closed-loop driver must observe.
  bool process_faults(double t_us);
  /// End of the outage (union of overlapping windows) covering `t_us` on
  /// `device`; returns t_us when the device is up.
  double outage_until(std::size_t device, double t_us) const;
  /// The instant a wave on `device` spanning [dispatch, completion) would
  /// abort, or +infinity: the earliest unprocessed outage start / defect
  /// growth hitting the span (clamped to dispatch), or an injected
  /// anneal/readout failure drawn from the wave's dedicated fault stream.
  double wave_fail_us(std::size_t device, std::size_t wave_id,
                      double dispatch_us, double completion_us);
  /// Terminal outcomes.  `dispatch_us` is the failed wave's dispatch (==
  /// t_us for never-dispatched jobs); completion is t_us in both cases.
  /// `mid_flight` marks the failed-wave ladder (the job already left the
  /// queue at its wave's dispatch) for the trace events only.
  void finalize_fallback(std::size_t seq, double dispatch_us, double t_us,
                         bool mid_flight = false);
  void finalize_failed(std::size_t seq, double dispatch_us, double t_us,
                       bool mid_flight = false);
  /// Job `seq`'s earliest legal service start at dispatch instant `t_us`
  /// (arrival and retry-backoff readiness both bound it) — the doom
  /// predicate's start time.
  double start_at(std::size_t seq, double t_us) const {
    const double lo = t_us > jobs_[seq].arrival_us ? t_us
                                                   : jobs_[seq].arrival_us;
    return lo > job_ready_us_[seq] ? lo : job_ready_us_[seq];
  }
  /// Whether job `seq` would be warm-started at dispatch instant
  /// `t_free_us`: warm_start on, uplink with a known predecessor that was
  /// dispatched (not dropped), decoded uplink, and completed by
  /// `t_free_us` on the virtual clock.  A pure virtual-clock predicate, so
  /// wave membership is identical at any poll cadence or thread count.
  bool warm_eligible(std::size_t seq, double t_free_us) const;
  std::size_t effective_capacity(std::size_t device, std::size_t shape);
  /// Policy order at dispatch instant `t_us`: feasibility class (slack
  /// only), then deadline (edf/slack), then sequence.
  bool policy_before(std::size_t a, std::size_t b, double t_us) const;
  void dispatch_wave(std::size_t device, double t_free_us, std::size_t seed_seq);
  void execute_due(double t_us);
  void run_wave(std::size_t lane, std::size_t wave_id);

  SchedConfig config_;
  std::shared_ptr<DeviceSet> devices_;
  core::ThreadPool pool_;
  std::uint64_t decode_key_ = 0;
  std::uint64_t warm_key_ = 0;  ///< disjoint stream family for warm waves
  /// Normalized fault plan: nullptr when config_.fault is null or empty, so
  /// `plan_ == nullptr` IS the fault-free fast path everywhere.
  std::shared_ptr<const fault::FaultPlan> plan_;
  std::uint64_t fault_key_ = 0;  ///< keyed by the PLAN's seed, not config seed
  std::vector<std::vector<fault::OutageWindow>> outage_windows_;  ///< per device
  std::priority_queue<FaultEvent, std::vector<FaultEvent>, std::greater<>>
      fault_events_;
  std::size_t fault_event_order_ = 0;
  /// Growth i has been applied to devices_ — wave-fail pre-decision must
  /// only charge waves for growths still ahead of the virtual clock.
  std::vector<char> growth_applied_;
  std::vector<double> job_ready_us_;      ///< retry backoff gate, by seq
  std::vector<std::size_t> job_retries_;  ///< failed attempts, by seq
  anneal::Schedule warm_schedule_;  ///< reverse schedule warm waves run
  /// Seed registry: best decoded configuration per uplink sequence number
  /// (recorded from decode lanes, read when a dependent warm wave runs).
  anneal::WarmStartPlanner planner_;
  std::unordered_map<std::size_t, std::size_t> id_to_seq_;  ///< job id -> seq
  DispatchHook hook_;

  std::vector<serve::CellJob> jobs_;  ///< by sequence number
  std::vector<serve::JobRecord> records_;
  std::vector<JobState> states_;
  std::size_t admit_cursor_ = 0;        ///< first staged (unadmitted) seq
  std::vector<std::size_t> pending_;    ///< admitted, undispatched; seq order
  double now_us_ = 0.0;
  double last_arrival_us_ = 0.0;

  using Device = std::pair<double, std::size_t>;  ///< (free time, id)
  std::priority_queue<Device, std::vector<Device>, std::greater<>> free_devices_;
  std::vector<Device> parked_;  ///< devices with nothing routable; re-armed on admission

  std::vector<serve::Wave> waves_;
  std::vector<char> wave_executed_;  ///< decode ran (execute_due levels)
  /// Due-heaps so a long-lived streaming client's collect() only touches
  /// newly-due items, never rescanning the whole history.
  using Due = std::pair<double, std::size_t>;  ///< (completion time, id)
  std::priority_queue<Due, std::vector<Due>, std::greater<>> unexecuted_waves_;
  std::priority_queue<Due, std::vector<Due>, std::greater<>> undelivered_;  ///< (completion, seq)
  /// workers_[lane][device]: lane-local annealer built for that device's chip.
  std::vector<std::vector<std::unique_ptr<anneal::ChimeraAnnealer>>> workers_;
};

}  // namespace quamax::sched
