// SchedClient — the async streaming front end of the scheduler (ROADMAP:
// "an async streaming API (submit/poll) in front of DecodeService").
//
// A RAN front-end does not hand the annealing pool a batch: it streams
// detection jobs as subframes arrive and consumes completions whenever it
// gets around to asking.  SchedClient is that interface over the
// virtual-clock Scheduler:
//
//   SchedClient client(config);
//   Ticket t = client.submit(job);       // non-blocking; advances the clock
//   for (const Completion& c : client.poll())   // completions due by "now"
//     consume(c.ticket, c.record);
//   for (const Completion& c : client.drain())  // flush everything at EOS
//     consume(c.ticket, c.record);
//
// "Now" is the latest submitted arrival: poll() returns exactly the jobs
// whose waves completed on the virtual clock by that instant (dropped jobs
// at their drop instant), each exactly once, ordered by (completion time,
// ticket).  Because every wave's decode draws from its own counter-derived
// stream, the records — and their assignment to tickets — are bit-identical
// at any num_threads / batch_replicas setting AND any submit/poll
// interleaving: polling eagerly, lazily, or never (drain only) yields the
// same per-ticket bytes (tests/sched_test.cpp enforces this).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "quamax/sched/scheduler.hpp"

namespace quamax::sched {

/// Handle for one submitted job; `seq` is the submission sequence number.
struct Ticket {
  std::size_t seq = 0;
};

/// One finished job: its ticket plus the final record (virtual-clock
/// timings, deadline verdict, decode quality).
struct Completion {
  Ticket ticket;
  serve::JobRecord record;
};

class SchedClient {
 public:
  /// `devices` may share a prebuilt DeviceSet; nullptr builds one.
  explicit SchedClient(SchedConfig config,
                       std::shared_ptr<DeviceSet> devices = nullptr);

  const SchedConfig& config() const noexcept { return scheduler_.config(); }
  const std::shared_ptr<DeviceSet>& device_set() const noexcept {
    return scheduler_.device_set();
  }
  double now_us() const noexcept { return scheduler_.now_us(); }
  std::size_t submitted() const noexcept { return scheduler_.num_submitted(); }

  /// Streams one job in (non-decreasing arrival order) — either direction,
  /// implicitly converted from a DecodeJob or PrecodeJob.  Advances the
  /// virtual clock to the job's arrival.  Throws CapacityError when no
  /// device can embed the job's shape.
  Ticket submit(serve::CellJob job);

  /// Completions due by the current clock that no earlier poll returned,
  /// ordered by (completion time, ticket seq).
  std::vector<Completion> poll();

  /// End of stream: runs the schedule to completion and returns every
  /// completion not yet polled.
  std::vector<Completion> drain();

  /// Direct access to the underlying engine (records/waves for reporting).
  const Scheduler& scheduler() const noexcept { return scheduler_; }

 private:
  std::vector<Completion> completions_for(const std::vector<std::size_t>& seqs);

  Scheduler scheduler_;
};

}  // namespace quamax::sched
