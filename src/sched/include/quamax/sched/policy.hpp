// Queue policies for the multi-device decode scheduler (ROADMAP: "EDF or
// slack-aware queue policies vs FIFO").
//
// The scheduler picks which queued job seeds the next chip wave.  Kasi et
// al.'s NextG feasibility analysis (arXiv:2109.01465) frames the QA data
// center as a deadline-bound queueing system, where arrival-order service is
// the wrong discipline the moment jobs carry heterogeneous HARQ budgets: a
// tight-deadline job stuck behind a loose one misses for no reason.  Three
// disciplines are modeled:
//
//   * kFifo  — arrival (submission) order; the PR-3 DecodeService behavior
//     and the baseline every policy sweep compares against.
//   * kEdf   — earliest deadline first.  Classic optimal single-resource
//     discipline under feasible load; under overload it still front-loads
//     urgent work but wastes service on jobs already doomed to miss.
//   * kSlack — least-slack-first with doomed-job deferral: jobs that can
//     still meet their deadline from the dispatch instant are served in
//     deadline order; jobs whose deadline is unreachable even by immediate
//     service are deferred behind every feasible job (served in deadline
//     order among themselves rather than dropped, unless drop_late sheds
//     them).  Spends saturated-device time on jobs that can still win.
//
// Every ordering is resolved DETERMINISTICALLY: (feasibility,) deadline,
// then submission sequence — so two runs of the same workload produce the
// same wave log at any thread count.
#pragma once

#include <string>

namespace quamax::sched {

enum class QueuePolicy {
  kFifo,   ///< arrival order (the PR-3 DecodeService discipline)
  kEdf,    ///< earliest deadline first, ties by submission sequence
  kSlack,  ///< EDF over feasible jobs; doomed jobs deferred to the back
};

/// Parses "fifo" / "edf" / "slack" (the --queue-policy / QUAMAX_QUEUE_POLICY
/// spellings).  Throws InvalidArgument on anything else.
QueuePolicy parse_queue_policy(const std::string& text);

/// The canonical knob spelling of a policy.
std::string to_string(QueuePolicy policy);

}  // namespace quamax::sched
