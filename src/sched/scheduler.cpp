#include "quamax/sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "quamax/common/error.hpp"
#include "quamax/core/transform.hpp"
#include "quamax/fault/fallback.hpp"
#include "quamax/metrics/solution_stats.hpp"
#include "quamax/vpp/precode.hpp"
#include "quamax/wireless/channel.hpp"

namespace quamax::sched {
namespace {

/// Ground-state test sharing metrics::kEnergyTolerance so scheduler records
/// and the metrics layer agree on the same samples by construction.
bool reaches_ground(double best_energy, double ground_energy) {
  return best_energy <= ground_energy + metrics::kEnergyTolerance;
}

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

Scheduler::Scheduler(SchedConfig config, std::shared_ptr<DeviceSet> devices)
    : config_(std::move(config)),
      devices_(std::move(devices)),
      pool_(config_.num_threads) {
  require(config_.num_anneals >= 1, "Scheduler: need at least one anneal");
  require(config_.program_overhead_us >= 0.0,
          "Scheduler: negative program overhead");
  config_.annealer.schedule.validate();
  require(!config_.annealer.schedule.reverse,
          "Scheduler: reverse annealing is single-problem only");
  if (config_.devices.empty())
    config_.devices = uniform_devices(config_.annealer, 1);
  if (devices_ == nullptr)
    devices_ = std::make_shared<DeviceSet>(config_.annealer, config_.devices);
  require(devices_->size() == config_.devices.size(),
          "Scheduler: device set size does not match the device specs");
  require(config_.warm_num_anneals <= config_.num_anneals,
          "Scheduler: the warm quota is a CUT of the cold quota");
  // The warm reverse schedule is fixed at construction; validate it even
  // when warm_start is off so a config error surfaces immediately.
  warm_schedule_ = config_.annealer.schedule;
  warm_schedule_.reverse = true;
  warm_schedule_.reverse_depth = config_.warm_reverse_depth;
  warm_schedule_.validate();
  for (std::size_t d = 0; d < devices_->size(); ++d)
    free_devices_.emplace(0.0, d);
  workers_.resize(pool_.size());
  for (auto& lane : workers_) lane.resize(devices_->size());
  // warm_key_ is drawn AFTER decode_key_ from the same root, so cold waves
  // keep their historical streams and warm waves can never collide with
  // them for any wave id.
  Rng root(config_.seed);
  decode_key_ = root();
  warm_key_ = root();

  // Fault plan (normalized: an empty plan IS the fault-free path).  The
  // fault stream family is keyed by the PLAN's own seed — the root draws
  // above never move, so attaching a plan keeps every decode and warm
  // stream bit-compatible with history.
  if (config_.fault != nullptr && !config_.fault->empty()) {
    config_.fault->validate(devices_->size());
    plan_ = config_.fault;
    fault_key_ = Rng(plan_->seed)();
    // Defect growth mutates the device pool mid-run; a caller-shared
    // DeviceSet must never see that, so take a private pool built from the
    // same specs (placements recompile — correctness over reuse here).
    if (!plan_->growths.empty())
      devices_ = std::make_shared<DeviceSet>(config_.annealer, config_.devices);
    outage_windows_.assign(devices_->size(), {});
    for (std::size_t i = 0; i < plan_->outages.size(); ++i) {
      const fault::OutageWindow& w = plan_->outages[i];
      outage_windows_[w.device].push_back(w);
      fault_events_.push(
          {w.start_us, fault_event_order_++, FaultKind::kOutageStart, i});
      fault_events_.push(
          {w.end_us, fault_event_order_++, FaultKind::kOutageEnd, i});
    }
    for (auto& windows : outage_windows_)
      std::sort(windows.begin(), windows.end(),
                [](const fault::OutageWindow& a, const fault::OutageWindow& b) {
                  return a.start_us < b.start_us;
                });
    growth_applied_.assign(plan_->growths.size(), 0);
    for (std::size_t i = 0; i < plan_->growths.size(); ++i)
      fault_events_.push({plan_->growths[i].time_us, fault_event_order_++,
                          FaultKind::kGrowth, i});
  }
}

double Scheduler::wave_service_us() const {
  return config_.program_overhead_us +
         static_cast<double>(config_.num_anneals) *
             config_.annealer.schedule.duration_us();
}

std::size_t Scheduler::warm_quota() const {
  return config_.warm_num_anneals > 0 ? config_.warm_num_anneals
                                      : config_.num_anneals;
}

double Scheduler::warm_wave_service_us() const {
  return config_.program_overhead_us +
         static_cast<double>(warm_quota()) * warm_schedule_.duration_us();
}

std::size_t Scheduler::submit(serve::CellJob job) {
  require(job.arrival_us >= last_arrival_us_,
          "Scheduler::submit: jobs must arrive in non-decreasing order");
  // Under a fault plan an unservable shape (a defect growth may have eaten
  // the last embedding mid-run) rides the fallback ladder below instead of
  // throwing; without one the historical contract holds.
  const bool servable = devices_->max_capacity(job.shape()) > 0;
  if (!servable && plan_ == nullptr)
    throw CapacityError("Scheduler::submit: no device can embed shape " +
                        std::to_string(job.shape()));
  advance_to(job.arrival_us);
  last_arrival_us_ = job.arrival_us;
  now_us_ = std::max(now_us_, job.arrival_us);

  const std::size_t seq = jobs_.size();
  serve::JobRecord record;
  record.job_id = job.id;
  record.user = job.user;
  record.direction = job.direction();
  record.arrival_us = job.arrival_us;
  record.deadline_us = job.deadline_us;
  // Coherence chains reference predecessors by JOB id; map to sequence
  // numbers so warm dispatch can find the prior record.
  if (config_.warm_start && !job.downlink()) id_to_seq_[job.id] = seq;
  records_.push_back(record);
  states_.push_back(JobState::kQueued);
  job_ready_us_.push_back(0.0);
  job_retries_.push_back(0);
  if (config_.trace != nullptr) {
    obs::JobSubmitEvent event;
    event.job_id = job.id;
    event.user = static_cast<int>(job.user);
    event.direction = job.downlink() ? 1 : 0;
    event.submit_us = job.arrival_us;
    event.deadline_us = job.deadline_us;
    config_.trace->on_job_submit(event);
  }
  jobs_.push_back(std::move(job));
  if (!servable) {
    if (config_.fallback != fault::FallbackMode::kNone)
      finalize_fallback(seq, jobs_[seq].arrival_us, jobs_[seq].arrival_us);
    else
      finalize_failed(seq, jobs_[seq].arrival_us, jobs_[seq].arrival_us);
  }
  return seq;
}

void Scheduler::advance_to(double horizon_us) {
  while (true) {
    const Round result = round(horizon_us);
    if (result == Round::kNoWork || result == Round::kHorizon) return;
  }
}

bool Scheduler::advance_until_dispatch() {
  while (true) {
    const Round result = round(kInfinity);
    if (result == Round::kDispatched || result == Round::kSwept) return true;
    if (result == Round::kNoWork) return false;
  }
}

void Scheduler::finish() {
  advance_to(kInfinity);
  require(admit_cursor_ == jobs_.size() && pending_.empty(),
          "Scheduler::finish: undispatched jobs remain");
  execute_due(kInfinity);
}

// One dispatch attempt for the earliest-free device — the PR-3 event loop's
// body, generalized with policy ordering and shape-aware routing.  The
// round's effective time never reaches `horizon_us`: every arrival a round
// could admit has already been submitted, which is what makes the async
// timeline identical to a batch run of the same workload.
Scheduler::Round Scheduler::round(double horizon_us) {
  if (free_devices_.empty()) return Round::kNoWork;
  const auto [freed_us, device] = free_devices_.top();
  free_devices_.pop();
  double t_free = freed_us;
  bool finalized = false;  // process_faults ended a job (hook fired)

  while (true) {
    // An idle device jumps to the next submitted arrival (the batch loop
    // jumped to the feed's next release) or the next fault event —
    // whichever comes first, so fault processing stays globally
    // time-ordered against every dispatch decision.
    if (pending_.empty()) {
      double next = kInfinity;
      if (admit_cursor_ < jobs_.size())
        next = jobs_[admit_cursor_].arrival_us;
      if (!fault_events_.empty() && fault_events_.top().t_us < next)
        next = fault_events_.top().t_us;
      if (next == kInfinity) {
        free_devices_.emplace(finalized ? t_free : freed_us, device);
        return finalized ? Round::kSwept : Round::kNoWork;
      }
      t_free = std::max(t_free, next);
    }
    if (t_free >= horizon_us) {
      // Re-queue at the ORIGINAL free time, not the jumped one: a round
      // that does nothing must leave no trace, or device tie-breaking
      // would depend on how many advance_to() calls a driver happens to
      // make (the batch loop advances once per release on top of
      // submit()'s internal advance, the streaming client only via
      // submit()) — and the async == batch contract would break the
      // moment two devices go free at the same instant
      // (tests/sched_property_test.cpp caught exactly this).
      free_devices_.emplace(freed_us, device);
      return Round::kHorizon;
    }

    // Apply the fault timeline up to this instant: defect growth, outage
    // trace marks, failed waves' retry/fallback ladders (which may
    // re-queue members into pending_).  Every event <= t_free is processed
    // before any decision at t_free, in (time, insertion) order — the same
    // order in every driver, whatever its advance_to() cadence.
    if (process_faults(t_free)) finalized = true;

    // A device inside an outage window serves nothing until it ends.
    const double up_us = outage_until(device, t_free);
    if (up_us > t_free) {
      free_devices_.emplace(up_us, device);
      return finalized ? Round::kSwept : Round::kDeferred;
    }

    // Admit everything released by t_free, then shed doomed jobs (the doom
    // sweep also runs with a fallback configured — doomed jobs are served
    // classically instead of dropped).
    admit_up_to(t_free);
    if (config_.drop_late || config_.fallback != fault::FallbackMode::kNone) {
      const std::size_t before = pending_.size();
      sweep_doomed(t_free);
      if (pending_.empty() && before > 0) {
        // The sweep emptied the queue: requeue the device and let the next
        // round (any device) jump forward, exactly like the batch loop.
        free_devices_.emplace(t_free, device);
        return Round::kSwept;
      }
    }
    if (pending_.empty()) continue;  // nothing admitted yet; jump again

    // Shape-aware routing: seed with the policy-best pending job whose
    // shape this device can embed.
    std::size_t seed_seq = jobs_.size();
    bool found = false;
    for (const std::size_t seq : pending_) {
      if (!devices_->fits(device, jobs_[seq].shape())) continue;
      if (!found || policy_before(seq, seed_seq, t_free)) {
        seed_seq = seq;
        found = true;
      }
    }
    if (!found) {
      // Every pending job needs some other device; park until the next
      // admission re-arms us.
      parked_.emplace_back(t_free, device);
      return Round::kParked;
    }

    dispatch_wave(device, t_free, seed_seq);
    return Round::kDispatched;
  }
}

void Scheduler::admit_up_to(double t_us) {
  bool admitted = false;
  while (admit_cursor_ < jobs_.size() &&
         jobs_[admit_cursor_].arrival_us <= t_us) {
    const std::size_t seq = admit_cursor_++;
    // submit() may have finalized a staged job already (shape unservable on
    // arrival under a fault plan) — never re-admit a resolved job.
    if (states_[seq] != JobState::kQueued) continue;
    // Defect growth between staging and admission may have eaten the last
    // embedding for this shape; resolve at admission instead of routing.
    if (plan_ != nullptr && !plan_->growths.empty() &&
        devices_->max_capacity(jobs_[seq].shape()) == 0) {
      if (config_.fallback != fault::FallbackMode::kNone)
        finalize_fallback(seq, jobs_[seq].arrival_us, jobs_[seq].arrival_us);
      else
        finalize_failed(seq, jobs_[seq].arrival_us, jobs_[seq].arrival_us);
      continue;
    }
    pending_.push_back(seq);
    admitted = true;
  }
  if (admitted && !parked_.empty()) {
    // New work may fit a parked device; re-arm the whole bench.
    for (const Device& d : parked_) free_devices_.push(d);
    parked_.clear();
  }
}

// Deadline-aware admission (ServiceConfig::drop_late and the fallback
// ladder): every queued job that even immediate service — starting at
// start_at(seq, t_free) — can no longer save is shed.  With a fallback
// configured a doomed job completes classically RIGHT NOW instead of
// dropping (the degraded-mode guarantee; fallback wins over drop_late).
// Scans the whole queue, so it is correct for heterogeneous per-job budgets
// (HARQ class mixes).
void Scheduler::sweep_doomed(double t_free_us) {
  const double service_us = wave_service_us();
  std::vector<std::size_t> survivors;
  survivors.reserve(pending_.size());
  for (const std::size_t seq : pending_) {
    const double start_us = start_at(seq, t_free_us);
    if (jobs_[seq].deadline_us >= start_us + service_us) {
      survivors.push_back(seq);
      continue;
    }
    if (config_.fallback != fault::FallbackMode::kNone) {
      finalize_fallback(seq, start_us, start_us);
      continue;
    }
    records_[seq].dropped = true;
    records_[seq].retries = job_retries_[seq];
    records_[seq].dispatch_us = start_us;
    records_[seq].completion_us = start_us;
    states_[seq] = JobState::kDropped;
    undelivered_.emplace(start_us, seq);
    if (config_.trace != nullptr) {
      obs::JobDropEvent event;
      event.job_id = jobs_[seq].id;
      event.drop_us = start_us;
      event.deadline_us = jobs_[seq].deadline_us;
      config_.trace->on_job_drop(event);
    }
    if (hook_) hook_(jobs_[seq], start_us);
  }
  pending_ = std::move(survivors);
}

bool Scheduler::process_faults(double t_us) {
  bool finalized = false;
  while (!fault_events_.empty() && fault_events_.top().t_us <= t_us) {
    const FaultEvent ev = fault_events_.top();
    fault_events_.pop();
    switch (ev.kind) {
      case FaultKind::kOutageStart: {
        // Scheduling reads the window list directly (outage_until,
        // wave_fail_us); the timeline entry exists so the down-mark lands
        // in the trace exactly once, in global time order, in every driver.
        if (config_.trace != nullptr) {
          const fault::OutageWindow& w = plan_->outages[ev.index];
          obs::DeviceDownEvent event;
          event.device = static_cast<int>(w.device);
          event.down_us = w.start_us;
          event.up_us = w.end_us;
          config_.trace->on_device_down(event);
        }
        break;
      }
      case FaultKind::kOutageEnd: {
        if (config_.trace != nullptr) {
          const fault::OutageWindow& w = plan_->outages[ev.index];
          obs::DeviceUpEvent event;
          event.device = static_cast<int>(w.device);
          event.up_us = w.end_us;
          config_.trace->on_device_up(event);
        }
        break;
      }
      case FaultKind::kGrowth: {
        const fault::DefectGrowth& growth = plan_->growths[ev.index];
        // Flush every decode due by the growth instant FIRST: those waves
        // annealed on the pre-growth topology and must sample it.
        execute_due(growth.time_us);
        devices_->grow_defects(growth.device, growth.qubits);
        growth_applied_[ev.index] = 1;
        // Lane workers cached the old chip; rebuild lazily on next use.
        for (auto& lane : workers_) lane[growth.device].reset();
        // Pending jobs whose shape the shrunken pool can no longer embed
        // anywhere resolve now (fallback or terminal failure).
        std::vector<std::size_t> survivors;
        survivors.reserve(pending_.size());
        for (const std::size_t seq : pending_) {
          if (devices_->max_capacity(jobs_[seq].shape()) > 0) {
            survivors.push_back(seq);
            continue;
          }
          const double at = std::max(growth.time_us, jobs_[seq].arrival_us);
          if (config_.fallback != fault::FallbackMode::kNone)
            finalize_fallback(seq, at, at);
          else
            finalize_failed(seq, at, at);
          finalized = true;
        }
        pending_ = std::move(survivors);
        break;
      }
      case FaultKind::kWaveFail: {
        // The failed wave's members (in sequence order — canonical wave
        // membership order) ride the retry/fallback ladder.
        const serve::Wave& wave = waves_[ev.index];
        bool requeued = false;
        for (const std::size_t seq : wave.jobs) {
          if (states_[seq] != JobState::kInFlight) continue;
          ++job_retries_[seq];
          const double ready = wave.fail_us + config_.retry_backoff_us;
          const bool budget_ok =
              job_retries_[seq] <= config_.max_retries &&
              devices_->max_capacity(jobs_[seq].shape()) > 0;
          const bool slack_ok =
              jobs_[seq].deadline_us >= ready + wave_service_us();
          // Retry while the budget lasts; with a fallback configured only
          // retries that can still make the deadline are worth burning
          // device time on — otherwise degrade immediately.  Without one,
          // a doomed retry is still the job's best remaining shot.
          if (budget_ok &&
              (config_.fallback == fault::FallbackMode::kNone || slack_ok)) {
            states_[seq] = JobState::kQueued;
            job_ready_us_[seq] = ready;
            pending_.insert(
                std::lower_bound(pending_.begin(), pending_.end(), seq), seq);
            requeued = true;
            if (config_.trace != nullptr) {
              obs::JobRetryEvent event;
              event.job_id = jobs_[seq].id;
              event.wave_id = wave.id;
              event.device = static_cast<int>(wave.device);
              event.fail_us = wave.fail_us;
              event.ready_us = ready;
              event.retry = static_cast<int>(job_retries_[seq]);
              config_.trace->on_job_retry(event);
            }
            continue;
          }
          if (config_.fallback != fault::FallbackMode::kNone)
            finalize_fallback(seq, wave.dispatch_us, wave.fail_us,
                              /*mid_flight=*/true);
          else
            finalize_failed(seq, wave.dispatch_us, wave.fail_us,
                            /*mid_flight=*/true);
          finalized = true;
        }
        if (requeued && !parked_.empty()) {
          // Re-queued work may fit a parked device; re-arm the bench.
          for (const Device& d : parked_) free_devices_.push(d);
          parked_.clear();
        }
        break;
      }
    }
  }
  return finalized;
}

double Scheduler::outage_until(std::size_t device, double t_us) const {
  if (plan_ == nullptr) return t_us;
  // Union of overlapping/adjacent windows: extend past every window
  // covering t until a fixpoint (the per-device list is start-sorted, so
  // one forward pass suffices).
  double t = t_us;
  for (const fault::OutageWindow& w : outage_windows_[device])
    if (w.start_us <= t && t < w.end_us) t = w.end_us;
  return t;
}

double Scheduler::wave_fail_us(std::size_t device, std::size_t wave_id,
                               double dispatch_us, double completion_us) {
  double fail = kInfinity;
  for (const fault::OutageWindow& w : outage_windows_[device])
    if (w.start_us < completion_us && w.end_us > dispatch_us)
      fail = std::min(fail, std::max(dispatch_us, w.start_us));
  for (std::size_t i = 0; i < plan_->growths.size(); ++i) {
    const fault::DefectGrowth& g = plan_->growths[i];
    // Only growths NOT yet applied to the pool can abort this wave: a
    // parked device may pop with a free time predating an already-applied
    // growth, but its wave anneals on the post-growth topology.
    if (growth_applied_[i] == 0 && g.device == device &&
        g.time_us < completion_us)
      fail = std::min(fail, std::max(dispatch_us, g.time_us));
  }
  if (plan_->anneal_failure_prob > 0.0 || plan_->readout_failure_prob > 0.0) {
    // Both uniforms are ALWAYS drawn when either probability is set, so
    // toggling one injection never shifts the other's draw for any wave.
    Rng draw = Rng::for_stream(fault_key_, wave_id);
    const double u_anneal = draw.uniform();
    const double u_readout = draw.uniform();
    const double half_overhead = config_.program_overhead_us / 2.0;
    if (u_anneal < plan_->anneal_failure_prob)
      fail = std::min(fail, completion_us - half_overhead);
    else if (u_readout < plan_->readout_failure_prob)
      fail = std::min(fail, completion_us);
  }
  return fail;
}

void Scheduler::finalize_fallback(std::size_t seq, double dispatch_us,
                                  double t_us, bool mid_flight) {
  const fault::ClassicalDecode decode =
      fault::classical_decode(jobs_[seq], config_.fallback);
  serve::JobRecord& record = records_[seq];
  record.fallback = true;
  record.retries = job_retries_[seq];
  record.dispatch_us = dispatch_us;
  record.completion_us = t_us;
  record.bit_errors = decode.bit_errors;
  record.num_bits = decode.num_bits;
  record.ground_state = false;
  states_[seq] = JobState::kFallback;
  undelivered_.emplace(t_us, seq);
  if (config_.trace != nullptr) {
    obs::JobFallbackEvent event;
    event.job_id = jobs_[seq].id;
    event.direction = jobs_[seq].downlink() ? 1 : 0;
    event.fallback_us = t_us;
    event.deadline_us = jobs_[seq].deadline_us;
    event.bit_errors = decode.bit_errors;
    event.num_bits = decode.num_bits;
    event.mid_flight = mid_flight;
    config_.trace->on_job_fallback(event);
  }
  if (hook_) hook_(jobs_[seq], t_us);
}

void Scheduler::finalize_failed(std::size_t seq, double dispatch_us,
                                double t_us, bool mid_flight) {
  serve::JobRecord& record = records_[seq];
  record.failed = true;
  record.retries = job_retries_[seq];
  record.dispatch_us = dispatch_us;
  record.completion_us = t_us;
  states_[seq] = JobState::kFailed;
  undelivered_.emplace(t_us, seq);
  if (config_.trace != nullptr) {
    // A terminal failure is a miss the same way a drop is; it shares the
    // drop event so downstream tooling needs no third terminal kind.
    obs::JobDropEvent event;
    event.job_id = jobs_[seq].id;
    event.drop_us = t_us;
    event.deadline_us = jobs_[seq].deadline_us;
    event.mid_flight = mid_flight;
    config_.trace->on_job_drop(event);
  }
  if (hook_) hook_(jobs_[seq], t_us);
}

bool Scheduler::warm_eligible(std::size_t seq, double t_free_us) const {
  if (!config_.warm_start) return false;
  const serve::CellJob& job = jobs_[seq];
  if (job.downlink() || !job.predecessor.has_value()) return false;
  const auto it = id_to_seq_.find(*job.predecessor);
  if (it == id_to_seq_.end()) return false;
  const std::size_t pred = it->second;
  // A dropped predecessor was never decoded; a downlink one (possible only
  // if a driver recycled ids) leaves no spin configuration either.
  if (states_[pred] != JobState::kDispatched) return false;
  if (records_[pred].direction != serve::Direction::kUplink) return false;
  // A seed can only start a problem of the same variable count (coherent
  // chains guarantee this; arbitrary drivers may not).
  if (jobs_[pred].shape() != jobs_[seq].shape()) return false;
  // The seed exists at this dispatch instant only if the predecessor's
  // wave completed by it on the VIRTUAL clock.  (The wave's decode may
  // still be pending on the wall clock — execute_due orders it first.)
  return records_[pred].completion_us <= t_free_us;
}

std::size_t Scheduler::effective_capacity(std::size_t device, std::size_t shape) {
  return clamp_wave_jobs(devices_->capacity(device, shape), config_.packing,
                         config_.max_wave_jobs);
}

bool Scheduler::policy_before(std::size_t a, std::size_t b, double t_us) const {
  switch (config_.policy) {
    case QueuePolicy::kFifo:
      return a < b;
    case QueuePolicy::kEdf: {
      const double da = jobs_[a].deadline_us;
      const double db = jobs_[b].deadline_us;
      if (da != db) return da < db;
      return a < b;
    }
    case QueuePolicy::kSlack: {
      // Feasible jobs (still able to meet their deadline from this dispatch
      // instant) come first, in deadline order; doomed jobs defer to the
      // back rather than burn device time ahead of winnable work.
      const double service_us = wave_service_us();
      const auto doomed = [&](std::size_t seq) {
        return jobs_[seq].deadline_us < start_at(seq, t_us) + service_us;
      };
      const bool doomed_a = doomed(a);
      const bool doomed_b = doomed(b);
      if (doomed_a != doomed_b) return !doomed_a;
      const double da = jobs_[a].deadline_us;
      const double db = jobs_[b].deadline_us;
      if (da != db) return da < db;
      return a < b;
    }
  }
  return a < b;
}

void Scheduler::dispatch_wave(std::size_t device, double t_free_us,
                              std::size_t seed_seq) {
  const std::size_t shape = jobs_[seed_seq].shape();
  const std::size_t cap = effective_capacity(device, shape);
  // Warmness homogeneity: the whole wave runs ONE anneal program (one
  // schedule, one quota), so only jobs matching the seed job's warmness at
  // this instant may fill it; the others stay queued for a later wave.
  const bool warm = warm_eligible(seed_seq, t_free_us);

  // Fill with the policy-best same-shape jobs (the seed is one of them).
  std::vector<std::size_t> same_shape;
  for (const std::size_t seq : pending_)
    if (jobs_[seq].shape() == shape &&
        warm_eligible(seq, t_free_us) == warm)
      same_shape.push_back(seq);
  std::sort(same_shape.begin(), same_shape.end(),
            [&](std::size_t a, std::size_t b) {
              return policy_before(a, b, t_free_us);
            });
  if (same_shape.size() > cap) same_shape.resize(cap);
  // Wave membership is recorded in sequence order whatever the policy, so
  // the wave log (and the job -> sample mapping) has one canonical form.
  std::sort(same_shape.begin(), same_shape.end());

  serve::Wave wave;
  wave.id = waves_.size();
  wave.shape = shape;
  wave.device = device;
  wave.jobs = same_shape;
  wave.warm = warm;
  if (warm)
    for (const std::size_t seq : wave.jobs)
      wave.seeds.push_back(id_to_seq_.at(*jobs_[seq].predecessor));
  // Causality under multiple devices: members admitted at another device's
  // clock may arrive in THIS device's future (and a retried member may
  // still be inside its backoff); the wave starts no earlier than every
  // member's earliest legal start.
  wave.dispatch_us = t_free_us;
  for (const std::size_t seq : wave.jobs)
    wave.dispatch_us = std::max(wave.dispatch_us, start_at(seq, t_free_us));
  wave.completion_us =
      wave.dispatch_us + (warm ? warm_wave_service_us() : wave_service_us());

  // Fault pre-decision: the wave's fate is fixed AT DISPATCH on the virtual
  // clock (the fail instant is a pure function of the plan and the wave id),
  // so the decode lanes never see failed waves and the wall clock stays
  // fault-blind.
  if (plan_ != nullptr) {
    const double fail =
        wave_fail_us(device, wave.id, wave.dispatch_us, wave.completion_us);
    if (fail <= wave.completion_us) {
      wave.failed = true;
      wave.fail_us = fail;
    }
  }

  if (config_.trace != nullptr) {
    // The trace decomposition reproduces QuAMax §7's latency split from the
    // wave cost model: program_overhead_us covers programming + readout, so
    // it brackets the anneal span half-and-half; the anneal span itself is
    // exactly quota * schedule duration.  The four spans tile
    // [dispatch, completion], so per-job span sums equal the virtual-clock
    // service time bit-for-bit (the round-trip CTest re-adds them).
    obs::WaveEvent event;
    event.wave_id = wave.id;
    event.device = static_cast<int>(device);
    event.warm = warm;
    event.num_anneals =
        static_cast<int>(warm ? warm_quota() : config_.num_anneals);
    event.num_jobs = wave.jobs.size();
    event.policy = to_string(config_.policy);
    event.shape = std::to_string(shape);
    event.dispatch_us = wave.dispatch_us;
    const double half_overhead = config_.program_overhead_us / 2.0;
    event.program_end_us = wave.dispatch_us + half_overhead;
    event.readout_start_us = wave.completion_us - half_overhead;
    event.completion_us = wave.completion_us;
    event.failed = wave.failed;
    event.fail_us = wave.fail_us;
    config_.trace->on_wave(event);
  }

  if (wave.failed) {
    // A failed wave yields no samples: members go in-flight until the
    // kWaveFail event at the abort instant runs their retry/fallback
    // ladder.  No completion record, no delivery, no dispatch trace, no
    // hook — on the virtual clock nothing has been promised yet.  The
    // device is occupied only until the abort.
    for (const std::size_t seq : wave.jobs) {
      records_[seq].wave_id = wave.id;
      states_[seq] = JobState::kInFlight;
    }
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [&](std::size_t seq) {
                                    return states_[seq] != JobState::kQueued;
                                  }),
                   pending_.end());
    free_devices_.emplace(wave.fail_us, device);
    fault_events_.push(
        {wave.fail_us, fault_event_order_++, FaultKind::kWaveFail, wave.id});
    wave_executed_.push_back(1);  // never decodes
    waves_.push_back(std::move(wave));
    return;
  }

  for (const std::size_t seq : wave.jobs) {
    records_[seq].wave_id = wave.id;
    records_[seq].retries = job_retries_[seq];
    records_[seq].dispatch_us = wave.dispatch_us;
    records_[seq].completion_us = wave.completion_us;
    states_[seq] = JobState::kDispatched;
    undelivered_.emplace(wave.completion_us, seq);
    if (config_.trace != nullptr) {
      obs::JobDispatchEvent event;
      event.job_id = jobs_[seq].id;
      event.wave_id = wave.id;
      event.device = static_cast<int>(device);
      event.dispatch_us = wave.dispatch_us;
      event.completion_us = wave.completion_us;
      event.num_bits = jobs_[seq].downlink()
                           ? jobs_[seq].precode().tx_bits.size()
                           : jobs_[seq].uplink().use.tx_bits.size();
      config_.trace->on_job_dispatch(event);
    }
    if (hook_) hook_(jobs_[seq], wave.completion_us);
  }
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](std::size_t seq) {
                                  return states_[seq] != JobState::kQueued;
                                }),
                 pending_.end());

  // The device idles from t_free to the (possibly later) dispatch.
  free_devices_.emplace(wave.completion_us, device);
  unexecuted_waves_.emplace(wave.completion_us, wave.id);
  wave_executed_.push_back(0);
  waves_.push_back(std::move(wave));
}

std::vector<std::size_t> Scheduler::collect(double t) {
  // execute_due first: every record popped below with completion <= t
  // belongs to a wave executed just now (or earlier) or to a drop.
  execute_due(t);
  std::vector<std::size_t> done;
  while (!undelivered_.empty() && undelivered_.top().first <= t) {
    done.push_back(undelivered_.top().second);
    undelivered_.pop();
  }
  // Heap pop order IS (completion time, seq) — no sort needed.
  return done;
}

// The wall-clock phase: fan every due wave across lane-local, device-affine
// ChimeraAnnealer workers.  Wave w's entire decode draws from
// Rng::for_stream(key, w) and writes only its members' record slots, so the
// filled records are bit-identical at any thread count and any
// submit/collect interleaving.
void Scheduler::execute_due(double t_us) {
  std::vector<std::size_t> due;
  while (!unexecuted_waves_.empty() && unexecuted_waves_.top().first <= t_us) {
    due.push_back(unexecuted_waves_.top().second);
    unexecuted_waves_.pop();
  }
  if (due.empty()) return;
  // Warm waves read their predecessors' decoded configurations, so the due
  // list — already popped in (completion, id) order — runs in dependency
  // LEVELS: each level extends until a warm wave whose predecessor wave has
  // not executed yet.  A predecessor always completes strictly before its
  // dependent (pred completion <= dependent dispatch < dependent
  // completion), so it sits strictly earlier in this order — either in a
  // previous execute_due call or in an earlier level — and the partition
  // depends only on the virtual-clock wave log, never on poll cadence.  A
  // cold-only backlog collapses to one level: the historical single
  // parallel_for_lanes call, bit-identical.
  std::size_t start = 0;
  while (start < due.size()) {
    std::size_t end = start;
    while (end < due.size()) {
      const serve::Wave& wave = waves_[due[end]];
      bool ready = true;
      if (wave.warm)
        for (const std::size_t pred : wave.seeds)
          if (!wave_executed_[records_[pred].wave_id]) {
            ready = false;
            break;
          }
      if (!ready) break;
      ++end;
    }
    require(end > start,
            "Scheduler::execute_due: warm wave scheduled before its "
            "predecessor wave");
    pool_.parallel_for_lanes(end - start,
                             [&](std::size_t lane, std::size_t i) {
                               run_wave(lane, due[start + i]);
                             });
    for (std::size_t i = start; i < end; ++i) wave_executed_[due[i]] = 1;
    start = end;
  }
}

void Scheduler::run_wave(std::size_t lane, std::size_t wave_id) {
  const serve::Wave& wave = waves_[wave_id];
  std::unique_ptr<anneal::ChimeraAnnealer>& worker = workers_[lane][wave.device];
  if (worker == nullptr) {
    worker = std::make_unique<anneal::ChimeraAnnealer>(
        devices_->worker_config(wave.device));
    worker->set_embedding_cache(devices_->cache(wave.device));
  }

  std::vector<const qubo::IsingModel*> problems;
  problems.reserve(wave.jobs.size());
  for (const std::size_t seq : wave.jobs)
    problems.push_back(&jobs_[seq].ising());

  std::vector<std::vector<qubo::SpinVec>> samples;
  if (wave.warm) {
    // Reverse anneal from each member's predecessor configuration, at the
    // warm quota, on the warm key family — cold waves' streams are never
    // touched by this draw.
    std::vector<qubo::SpinVec> seeds(wave.jobs.size());
    std::vector<const qubo::SpinVec*> initial(wave.jobs.size());
    for (std::size_t s = 0; s < wave.jobs.size(); ++s) {
      std::optional<qubo::SpinVec> seed = planner_.seed(wave.seeds[s]);
      require(seed.has_value(),
              "Scheduler::run_wave: warm wave executed before its "
              "predecessor's decode was recorded");
      seeds[s] = std::move(*seed);
      initial[s] = &seeds[s];
    }
    Rng stream = Rng::for_stream(warm_key_, wave.id);
    samples = worker->sample_batch_seeded(problems, initial, warm_schedule_,
                                          warm_quota(), stream);
  } else {
    Rng stream = Rng::for_stream(decode_key_, wave.id);
    samples = worker->sample_batch(problems, config_.num_anneals, stream);
  }

  for (std::size_t s = 0; s < wave.jobs.size(); ++s) {
    const serve::CellJob& job = jobs_[wave.jobs[s]];
    serve::JobRecord& record = records_[wave.jobs[s]];

    // Best-of-N_a, exactly the QuAMaxDetector policy: keep the
    // lowest-energy configuration.
    const qubo::IsingModel& ising = job.ising();
    const qubo::SpinVec* best = nullptr;
    double best_energy = 0.0;
    for (const qubo::SpinVec& sample : samples[s]) {
      const double energy = ising.energy(sample);
      if (best == nullptr || energy < best_energy) {
        best = &sample;
        best_energy = energy;
      }
    }

    if (job.downlink()) {
      // Downlink: the sample is a perturbation vector.  A precoder never
      // sends a perturbation worse than none, so clip to v = 0 (classic
      // zero-forcing) when the anneal did not beat it — the jobwise VPP <=
      // ZF guarantee bench_vpp and the full-duplex experiment gate on.
      const vpp::PrecodeInstance& instance = job.precode();
      const qubo::SpinVec* chosen = best;
      double chosen_energy = best_energy;
      qubo::SpinVec zero;
      if (chosen_energy > instance.zf_energy) {
        zero = vpp::zero_perturbation_spins(instance.problem);
        chosen = &zero;
        chosen_energy = instance.zf_energy;
      }
      record.bit_errors = vpp::downlink_bit_errors(instance, *chosen);
      record.num_bits = instance.tx_bits.size();
      record.ground_state = reaches_ground(chosen_energy, instance.ground_energy);
      continue;
    }

    // Uplink: post-translate the decoded configuration to Gray bits.
    const sim::Instance& instance = job.uplink();
    // Register the best configuration as a potential warm-start seed for a
    // dependent subframe (keyed by sequence number; thread-safe — the
    // dependent wave runs in a later execute_due level).
    if (config_.warm_start) planner_.record(wave.jobs[s], *best);
    const wireless::BitVec decoded = core::gray_bits_from_spins(
        *best, instance.use.h.cols(), instance.use.mod);
    record.bit_errors =
        wireless::count_bit_errors(decoded, instance.use.tx_bits);
    record.num_bits = instance.use.tx_bits.size();
    record.ground_state = reaches_ground(best_energy, instance.ground_energy);
  }
}

}  // namespace quamax::sched
