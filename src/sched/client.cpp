#include "quamax/sched/client.hpp"

#include <limits>
#include <utility>

namespace quamax::sched {

SchedClient::SchedClient(SchedConfig config, std::shared_ptr<DeviceSet> devices)
    : scheduler_(std::move(config), std::move(devices)) {}

Ticket SchedClient::submit(serve::CellJob job) {
  return Ticket{scheduler_.submit(std::move(job))};
}

std::vector<Completion> SchedClient::poll() {
  // Rounds strictly before "now" have already run (submit advances the
  // clock); collect() executes the decodes of every wave completed by now.
  return completions_for(scheduler_.collect(scheduler_.now_us()));
}

std::vector<Completion> SchedClient::drain() {
  scheduler_.finish();
  return completions_for(
      scheduler_.collect(std::numeric_limits<double>::infinity()));
}

std::vector<Completion> SchedClient::completions_for(
    const std::vector<std::size_t>& seqs) {
  std::vector<Completion> out;
  out.reserve(seqs.size());
  for (const std::size_t seq : seqs)
    out.push_back(Completion{Ticket{seq}, scheduler_.records()[seq]});
  return out;
}

}  // namespace quamax::sched
