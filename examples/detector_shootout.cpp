// Detector shoot-out: QuAMax vs zero-forcing vs MMSE vs Sphere Decoder on
// identical channel uses — a miniature of the paper's Fig. 14 argument that
// linear detectors collapse when Nt ~ Nr while ML (classical or annealed)
// keeps decoding.
//
// Build & run:  ./examples/detector_shootout

#include <cstdio>
#include <vector>

#include "quamax/anneal/annealer.hpp"
#include "quamax/core/detector.hpp"
#include "quamax/detect/linear.hpp"
#include "quamax/detect/sphere.hpp"
#include "quamax/sim/report.hpp"
#include "quamax/sim/runner.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = quamax::sim::cli_threads(argc, argv);
  const std::size_t replicas = quamax::sim::cli_replicas(argc, argv);
  const quamax::anneal::AcceptMode accept_mode =
      quamax::sim::cli_accept_mode(argc, argv);
  using namespace quamax;

  Rng rng{31337};
  constexpr std::size_t kUsers = 10;
  constexpr std::size_t kUses = 40;
  const auto mod = wireless::Modulation::kBpsk;

  anneal::AnnealerConfig config;
  config.num_threads = threads;
  config.batch_replicas = replicas;
  config.accept_mode = accept_mode;
  config.schedule.anneal_time_us = 1.0;
  config.schedule.pause_time_us = 1.0;
  config.embed.improved_range = true;
  anneal::ChimeraAnnealer annealer(config);
  core::QuAMaxDetector quamax(annealer, {.num_anneals = 150});

  std::printf("Shoot-out: %zu x %zu %s, Rayleigh channel, %zu uses per SNR\n\n",
              kUsers, kUsers, wireless::to_string(mod).c_str(), kUses);
  sim::print_columns({"SNR dB", "ZF BER", "MMSE BER", "Sphere BER",
                      "QuAMax BER", "SD nodes"});

  for (const double snr : {6.0, 9.0, 12.0, 15.0, 20.0}) {
    std::size_t zf = 0, mmse = 0, sphere = 0, qa = 0, bits = 0, nodes = 0;
    for (std::size_t u = 0; u < kUses; ++u) {
      const auto use = wireless::make_channel_use(
          kUsers, kUsers, mod, wireless::ChannelKind::kRayleigh, snr, rng);
      zf += wireless::count_bit_errors(detect::zero_forcing_detect(use),
                                       use.tx_bits);
      mmse += wireless::count_bit_errors(detect::mmse_detect(use), use.tx_bits);
      const auto sd = detect::SphereDecoder{}.detect(use);
      sphere += wireless::count_bit_errors(sd.bits, use.tx_bits);
      nodes += sd.visited_nodes;
      qa += wireless::count_bit_errors(quamax.detect(use, rng).bits, use.tx_bits);
      bits += use.tx_bits.size();
    }
    const auto ber = [&](std::size_t errors) {
      return static_cast<double>(errors) / static_cast<double>(bits);
    };
    sim::print_row({sim::fmt_double(snr, 0), sim::fmt_ber(ber(zf)),
                    sim::fmt_ber(ber(mmse)), sim::fmt_ber(ber(sphere)),
                    sim::fmt_ber(ber(qa)),
                    sim::fmt_count(nodes / kUses)});
  }

  std::printf(
      "\nReading: the linear detectors plateau at an error floor in the\n"
      "square (Nt = Nr) regime; the Sphere Decoder attains ML performance at\n"
      "growing node cost; QuAMax tracks the ML BER using anneals instead of\n"
      "tree search.\n");
  return 0;
}
