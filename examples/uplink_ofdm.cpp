// C-RAN uplink scenario: an OFDM frame whose subcarriers are decoded by one
// centralized annealer (the deployment the paper's §1/§7 envisions).
//
// A 12-user QPSK uplink transmits one OFDM symbol over 16 flat-fading
// subcarriers; each subcarrier is an independent ML detection problem.  The
// data-center annealer decodes them in BATCHES: sample_batch() places
// several subcarriers' clique embeddings side by side on the chip so one
// anneal advances all of them (the paper's "opportunity to parallelize
// different problems, e.g. different subcarriers' ML decoding", §5.5).
//
// Build & run:  ./examples/uplink_ofdm

#include <cstdio>
#include <vector>

#include "quamax/anneal/annealer.hpp"
#include "quamax/core/detector.hpp"
#include "quamax/sim/runner.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = quamax::sim::cli_threads(argc, argv);
  const std::size_t replicas = quamax::sim::cli_replicas(argc, argv);
  const quamax::anneal::AcceptMode accept_mode =
      quamax::sim::cli_accept_mode(argc, argv);
  using namespace quamax;

  Rng rng{7};
  constexpr std::size_t kUsers = 12;
  constexpr std::size_t kSubcarriers = 16;
  constexpr double kSnrDb = 22.0;
  const auto mod = wireless::Modulation::kQpsk;

  anneal::AnnealerConfig config;
  config.num_threads = threads;
  config.batch_replicas = replicas;
  config.accept_mode = accept_mode;
  config.schedule.anneal_time_us = 1.0;
  config.schedule.pause_time_us = 1.0;
  config.embed.improved_range = true;
  anneal::ChimeraAnnealer annealer(config);

  const std::size_t logical =
      core::num_solution_variables(kUsers, mod);
  std::printf("Uplink: %zu users, %s, %zu subcarriers, %.0f dB SNR\n", kUsers,
              wireless::to_string(mod).c_str(), kSubcarriers, kSnrDb);
  std::printf("Each subcarrier is a %zu-spin Ising problem; chip fits %.1f of "
              "them per anneal batch\n\n",
              logical, annealer.parallelization_factor(logical));

  // Each subcarrier sees its own narrowband channel (OFDM flat fading);
  // reduce every subcarrier's ML problem up front.
  std::vector<wireless::ChannelUse> uses;
  std::vector<core::MlProblem> reduced;
  std::vector<const qubo::IsingModel*> problems;
  for (std::size_t sc = 0; sc < kSubcarriers; ++sc) {
    uses.push_back(wireless::make_channel_use(
        kUsers, kUsers, mod, wireless::ChannelKind::kRayleigh, kSnrDb, rng));
    reduced.push_back(core::reduce_ml_to_ising_closed_form(
        uses.back().h, uses.back().y, mod));
  }
  for (const auto& p : reduced) problems.push_back(&p.ising);

  // One batched submission: the chip hosts several subcarriers per anneal
  // (paper §5.5: "parallelize different problems, e.g. different
  // subcarriers' ML decoding").
  constexpr std::size_t kAnneals = 100;
  const auto batches = annealer.sample_batch(problems, kAnneals, rng);

  std::size_t frame_bit_errors = 0;
  std::size_t frame_bits = 0;
  std::size_t exact_subcarriers = 0;
  for (std::size_t sc = 0; sc < kSubcarriers; ++sc) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_idx = 0;
    for (std::size_t a = 0; a < batches[sc].size(); ++a) {
      const double e = reduced[sc].ising.energy(batches[sc][a]);
      if (e < best) {
        best = e;
        best_idx = a;
      }
    }
    const wireless::BitVec bits =
        core::gray_bits_from_spins(batches[sc][best_idx], kUsers, mod);
    const std::size_t errors = wireless::count_bit_errors(bits, uses[sc].tx_bits);
    frame_bit_errors += errors;
    frame_bits += uses[sc].tx_bits.size();
    exact_subcarriers += (errors == 0);
    std::printf("subcarrier %2zu: metric %8.4f, bit errors %zu\n", sc,
                best + reduced[sc].ising.offset(), errors);
  }

  const double ber =
      static_cast<double>(frame_bit_errors) / static_cast<double>(frame_bits);
  const double pf = annealer.parallelization_factor(logical);
  const double sequential_us =
      annealer.anneal_duration_us() * kAnneals * kSubcarriers;
  const double batched_us = annealer.anneal_duration_us() * kAnneals *
                            std::ceil(kSubcarriers / std::floor(pf));
  std::printf("\nFrame summary: %zu/%zu subcarriers exact, BER = %.2e\n",
              exact_subcarriers, kSubcarriers, ber);
  std::printf("Anneal time: %.0f us if decoded one-by-one; %.0f us with the "
              "batched submission (%.1f slots/chip)\n",
              sequential_us, batched_us, std::floor(pf));
  std::printf("1500-byte FER at this BER: %.2e\n",
              wireless::fer_from_ber(ber, 1500));
  return 0;
}
