// Quickstart: decode one MIMO uplink channel use with QuAMax, end to end.
//
// Walks through the full pipeline of the paper's §3.2.1 decoding example:
//   1. users Gray-map random bits onto QPSK symbols and transmit through a
//      Rayleigh channel with AWGN;
//   2. the receiver reduces ML detection to Ising form (closed-form
//      coefficients, Eqs. 7-8);
//   3. the quantum-annealer stand-in embeds the problem on a Chimera chip
//      and draws N_a anneals;
//   4. the best configuration is post-translated to Gray bits (Fig. 2);
//   5. the result is checked against the classical Sphere Decoder (exact ML)
//      and the transmitted ground truth.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "quamax/anneal/annealer.hpp"
#include "quamax/core/detector.hpp"
#include "quamax/detect/sphere.hpp"
#include "quamax/sim/runner.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = quamax::sim::cli_threads(argc, argv);
  const std::size_t replicas = quamax::sim::cli_replicas(argc, argv);
  const quamax::anneal::AcceptMode accept_mode =
      quamax::sim::cli_accept_mode(argc, argv);
  using namespace quamax;

  Rng rng{2024};
  constexpr std::size_t kUsers = 4;
  constexpr double kSnrDb = 18.0;

  // --- 1. Uplink transmission -------------------------------------------
  const wireless::ChannelUse use = wireless::make_channel_use(
      kUsers, kUsers, wireless::Modulation::kQpsk,
      wireless::ChannelKind::kRayleigh, kSnrDb, rng);
  std::printf("Transmitted bits :");
  for (auto b : use.tx_bits) std::printf(" %d", b);
  std::printf("\n");

  // --- 2. ML -> Ising reduction ------------------------------------------
  const core::MlProblem problem =
      core::reduce_ml_to_ising_closed_form(use.h, use.y, use.mod);
  std::printf("Reduced to an Ising problem with %zu spins and %zu couplings\n",
              problem.num_vars(), problem.ising.couplings().size());

  // --- 3. Anneal on the simulated D-Wave 2000Q ---------------------------
  anneal::AnnealerConfig annealer_config;
  annealer_config.num_threads = threads;
  annealer_config.batch_replicas = replicas;
  annealer_config.accept_mode = accept_mode;
  annealer_config.schedule.anneal_time_us = 1.0;   // Ta
  annealer_config.schedule.pause_time_us = 1.0;    // Tp (the paper's pick)
  annealer_config.embed.improved_range = true;
  anneal::ChimeraAnnealer annealer(annealer_config);

  core::QuAMaxDetector detector(annealer, {.num_anneals = 50});
  const core::DetectionResult result = detector.run(problem, rng);

  std::printf("Decoded bits     :");
  for (auto b : result.bits) std::printf(" %d", b);
  std::printf("\nBest ML metric ||y - Hv||^2 = %.6f (Ising energy %.3f)\n",
              result.best_metric, result.best_energy);

  // --- 4. Cross-check against classical ML and ground truth --------------
  const detect::SphereResult ml = detect::SphereDecoder{}.detect(use);
  std::printf("Sphere Decoder   : metric %.6f, %zu tree nodes visited\n",
              ml.metric, ml.visited_nodes);

  const std::size_t vs_tx = wireless::count_bit_errors(result.bits, use.tx_bits);
  const std::size_t vs_ml = wireless::count_bit_errors(result.bits, ml.bits);
  std::printf("Bit errors vs transmitted: %zu / %zu\n", vs_tx, use.tx_bits.size());
  std::printf("Agreement with exact ML  : %s\n",
              vs_ml == 0 ? "yes" : "no (annealer missed the ground state)");
  return vs_ml == 0 ? 0 : 1;
}
