// Annealer parameter tuning, the §5.3.1 microbenchmark workflow as a tool.
//
// Given a problem class (users x modulation), sweeps the embedding strength
// |J_F| and the pause configuration on sample instances, reports TTS(0.99)
// per setting, and prints the Fix recommendation (best median) — exactly how
// the paper arrives at its default parameter set (improved range, Tp = 1 us).
//
// Build & run:  ./examples/parameter_tuning [users] [bpsk|qpsk|qam16] [--threads N]

#include <cstdio>
#include <string>
#include <vector>

#include "quamax/anneal/annealer.hpp"
#include "quamax/common/stats.hpp"
#include "quamax/sim/report.hpp"
#include "quamax/sim/runner.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = quamax::sim::cli_threads(argc, argv);
  const std::size_t replicas = quamax::sim::cli_replicas(argc, argv);
  const quamax::anneal::AcceptMode accept_mode =
      quamax::sim::cli_accept_mode(argc, argv);
  using namespace quamax;

  // Positionals: [users] [modulation], with --threads [N] allowed anywhere.
  const std::vector<std::string> positional = sim::positional_args(argc, argv);

  std::size_t users = 12;
  wireless::Modulation mod = wireless::Modulation::kQpsk;
  if (positional.size() > 0)
    users = static_cast<std::size_t>(std::atoi(positional[0].c_str()));
  if (positional.size() > 1) {
    if (positional[1] == "bpsk") mod = wireless::Modulation::kBpsk;
    else if (positional[1] == "qpsk") mod = wireless::Modulation::kQpsk;
    else if (positional[1] == "qam16") mod = wireless::Modulation::kQam16;
    else {
      std::fprintf(stderr, "unknown modulation '%s'\n", positional[1].c_str());
      return 2;
    }
  }

  const std::size_t instances = 5;
  const std::size_t num_anneals = 400;
  std::printf("Tuning annealer parameters for %zu-user %s (%zu instances, "
              "%zu anneals per setting)\n",
              users, wireless::to_string(mod).c_str(), instances, num_anneals);

  Rng rng{99};
  std::vector<sim::Instance> insts;
  for (std::size_t i = 0; i < instances; ++i)
    insts.push_back(sim::make_instance(
        {.users = users, .mod = mod, .kind = {}, .snr_db = {}}, rng));

  anneal::AnnealerConfig config;
  config.num_threads = threads;
  config.batch_replicas = replicas;
  config.accept_mode = accept_mode;
  config.schedule.anneal_time_us = 1.0;
  config.embed.improved_range = true;
  anneal::ChimeraAnnealer annealer(config);

  struct Setting {
    double jf, tp, sp;
  };
  std::vector<Setting> settings;
  for (const double jf : {0.2, 0.35, 0.5, 0.75, 1.0}) {
    settings.push_back({jf, 0.0, 0.35});
    settings.push_back({jf, 1.0, 0.35});
    settings.push_back({jf, 1.0, 0.45});
  }

  sim::print_columns({"|J_F|", "Tp us", "s_p", "TTS med us", "P0 med"});
  sim::SweepMatrix tts_matrix;
  for (const Setting& s : settings) {
    auto updated = annealer.config();
    updated.embed.jf = s.jf;
    updated.schedule.pause_time_us = s.tp;
    updated.schedule.pause_position = s.sp;
    annealer.set_config(updated);

    std::vector<double> tts, p0;
    for (const sim::Instance& inst : insts) {
      const sim::RunOutcome outcome =
          sim::run_instance(inst, annealer, num_anneals, rng);
      tts.push_back(sim::outcome_tts_us(outcome));
      p0.push_back(outcome.stats.p0());
    }
    sim::print_row({sim::fmt_double(s.jf, 2), sim::fmt_double(s.tp, 0),
                    sim::fmt_double(s.sp, 2), sim::fmt_us(median(tts)),
                    sim::fmt_double(median(p0), 4)});
    tts_matrix.push_back(std::move(tts));
  }

  const Setting best = settings[sim::best_fixed_setting(tts_matrix)];
  std::printf("\nFix recommendation for %zu-user %s: |J_F| = %.2f, Tp = %.0f "
              "us, s_p = %.2f\n",
              users, wireless::to_string(mod).c_str(), best.jf, best.tp, best.sp);
  return 0;
}
