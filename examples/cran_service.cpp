// Walkthrough: a centralized-RAN decode service on measured-like traffic
// (paper §2 deployment story + §5.5 trace evaluation, served end to end).
//
// A base-station cluster submits one QPSK detection job per user per LTE
// subframe, with channels drawn from the synthetic Argos-like 96-antenna
// trace campaign.  One modeled QA device decodes the cluster: jobs queue,
// the first-fit packer merges same-shape jobs into chip waves, and every
// job's queueing/service/total latency is scored against a HARQ-style
// deadline.  The run then repeats with packing disabled to show what §4
// parallelization buys a serving system.
//
// All output derives from the virtual clock + counter-derived streams:
// re-running at any --threads / --replicas setting prints identical text.

#include <cstdio>
#include <vector>

#include "quamax/serve/load_gen.hpp"
#include "quamax/serve/service.hpp"
#include "quamax/sim/report.hpp"
#include "quamax/sim/runner.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = quamax::sim::cli_threads(argc, argv);
  const std::size_t replicas = quamax::sim::cli_replicas(argc, argv);
  const quamax::anneal::AcceptMode accept_mode =
      quamax::sim::cli_accept_mode(argc, argv);
  using namespace quamax;

  const std::size_t num_jobs = sim::scaled(160);
  sim::print_banner("C-RAN decode service walkthrough",
                    "serve subsystem on trace-driven subframe traffic",
                    "8 users x QPSK over Argos-like traces, " +
                        std::to_string(num_jobs) + " jobs, 1 ms subframes");

  // Traffic: one job per user per 1 ms subframe, channels from the trace
  // campaign, 600 us decode deadline (a HARQ-tight budget).
  serve::LoadConfig load;
  load.arrivals = serve::ArrivalKind::kSubframe;
  load.subframe_period_us = 1000.0;
  load.users = 8;
  load.deadline_us = 600.0;
  load.trace_channels = true;
  load.trace_pick = 8;
  load.trace_mod = wireless::Modulation::kQpsk;

  // Service: the paper's 2000Q-like chip, 1 us anneals, 40 anneals per wave.
  serve::ServiceConfig cfg;
  cfg.annealer.schedule.anneal_time_us = 1.0;
  cfg.annealer.batch_replicas = replicas;
  cfg.annealer.accept_mode = accept_mode;
  cfg.annealer.embed.improved_range = true;  // §5.5 trace setting
  cfg.num_anneals = sim::scaled(40);
  cfg.num_threads = threads;
  cfg.program_overhead_us = 10.0;

  for (const bool packing : {true, false}) {
    cfg.packing = packing;
    serve::DecodeService service(cfg);
    serve::LoadGenerator generator(load, 0xA2905);
    const serve::ServiceReport report =
        service.run(generator.open_loop(num_jobs));

    std::printf("\n=== packing %s ===\n", packing ? "ON" : "OFF");
    std::printf("capacity for QPSK shape %zu: %zu jobs/wave; wave service %.1f us\n",
                std::size_t{16}, service.wave_capacity(16),
                service.wave_service_us());
    std::printf("%s", report.stats.digest().c_str());

    if (packing) {
      std::printf("\nfirst subframe, job by job:\n");
      sim::print_columns(
          {"job", "user", "arrive us", "dispatch us", "done us", "wave", "errs"});
      for (std::size_t j = 0; j < std::min<std::size_t>(8, report.jobs.size());
           ++j) {
        const serve::JobRecord& rec = report.jobs[j];
        sim::print_row({sim::fmt_count(rec.job_id), sim::fmt_count(rec.user),
                        sim::fmt_us(rec.arrival_us), sim::fmt_us(rec.dispatch_us),
                        sim::fmt_us(rec.completion_us),
                        sim::fmt_count(rec.wave_id),
                        sim::fmt_count(rec.bit_errors)});
      }
    }
  }

  std::printf(
      "\nReading: with packing ON, the 8 users of each subframe share one\n"
      "chip wave, so the whole cluster decodes in one anneal batch and the\n"
      "deadline holds with a wide margin; with packing OFF each job queues\n"
      "behind its neighbors' full service times — the §4 parallelization is\n"
      "what makes one annealer a plausible cluster-scale decode appliance.\n");
  return 0;
}
