// Walkthrough: a centralized-RAN decode service on measured-like traffic
// (paper §2 deployment story + §5.5 trace evaluation, served end to end).
//
// Part 1 — batch service: a base-station cluster submits one QPSK
// detection job per user per LTE subframe, with channels drawn from the
// synthetic Argos-like 96-antenna trace campaign.  A pool of --devices
// modeled QA processors decodes the cluster under the --queue-policy
// dispatch discipline: jobs queue, the packer merges same-shape jobs into
// chip waves, and every job's queueing/service/total latency is scored
// against a HARQ-style deadline.  The run then repeats with packing
// disabled to show what §4 parallelization buys a serving system.
//
// Part 2 — async streaming (quamax::sched): the same front-end drives a
// SchedClient instead of a batch run: submit() returns a ticket per job as
// each subframe is released, poll() surfaces completions due by the
// virtual clock, and drain() flushes the tail — the submit/poll API a RAN
// front-end would actually speak.  The records stream back bit-identical
// to the batch run's.
//
// All output derives from the virtual clock + counter-derived streams:
// re-running at any --threads / --replicas setting prints identical text.
//
// Observability (quamax::obs): pass `--trace FILE` to record the packing-ON
// run's job/wave timeline as Chrome trace-event JSON (open in Perfetto or
// chrome://tracing; one track per device, flow arrows from each job's
// arrival to its wave), and `--prof` to print the top-5 wall-clock compute
// stages at exit (`--prof-json FILE` for the machine-readable table).  The
// packing-ON run is always windowed (obs v2): the walkthrough prints its
// per-window miss-rate series plus any SLO burn-rate alerts — the spec
// defaults to `miss_rate<=0.05` and is overridden with `--slo SPEC`.
// `--metrics FILE` additionally exports the windowed series, per-device
// duty-cycle/energy accounting, and SLO reports as JSON (or CSV by `.csv`
// suffix) plus a Prometheus text snapshot at FILE.prom; `--metrics-window
// US` sets the window width (default: horizon / 20).  All file notices go
// to stderr — stdout stays byte-identical with tracing and metrics export
// on or off, which is the obs determinism contract.

#include <cstdio>
#include <iostream>
#include <vector>

#include "quamax/obs/profile.hpp"
#include "quamax/obs/trace.hpp"
#include "quamax/sched/client.hpp"
#include "quamax/serve/load_gen.hpp"
#include "quamax/serve/metrics_export.hpp"
#include "quamax/serve/service.hpp"
#include "quamax/sim/report.hpp"
#include "quamax/sim/runner.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = quamax::sim::cli_threads(argc, argv);
  const std::size_t replicas = quamax::sim::cli_replicas(argc, argv);
  const std::optional<quamax::anneal::AcceptMode> accept_override =
      quamax::sim::cli_accept_mode_if_set(argc, argv);
  const std::size_t devices = quamax::sim::cli_devices(argc, argv);
  const quamax::sched::QueuePolicy policy =
      quamax::sched::parse_queue_policy(quamax::sim::cli_queue_policy(argc, argv));
  const std::string trace_path = quamax::sim::cli_trace(argc, argv);
  const bool prof = quamax::sim::cli_prof(argc, argv);
  const std::string prof_json = quamax::sim::cli_prof_json(argc, argv);
  using namespace quamax;

  serve::MetricsOptions metrics;
  metrics.path = sim::cli_metrics(argc, argv);
  metrics.window_us = sim::cli_metrics_window(argc, argv);
  metrics.slo = sim::cli_slo(argc, argv);
  if (metrics.slo.empty()) metrics.slo = "miss_rate<=0.05";

  if (prof || !prof_json.empty()) obs::Profiler::instance().set_enabled(true);
  obs::TraceLog trace_log;

  const std::size_t num_jobs = sim::scaled(160);
  sim::print_banner("C-RAN decode service walkthrough",
                    "serve + sched subsystems on trace-driven subframe traffic",
                    "8 users x QPSK over Argos-like traces, " +
                        std::to_string(num_jobs) + " jobs, 1 ms subframes, " +
                        std::to_string(devices) + " device(s), " +
                        sched::to_string(policy) + " queue");

  // Traffic: one job per user per 1 ms subframe, channels from the trace
  // campaign, 600 us decode deadline (a HARQ-tight budget).
  serve::LoadConfig load;
  load.arrivals = serve::ArrivalKind::kSubframe;
  load.subframe_period_us = 1000.0;
  load.users = 8;
  load.deadline_us = 600.0;
  load.trace_channels = true;
  load.trace_pick = 8;
  load.trace_mod = wireless::Modulation::kQpsk;

  // Service: the paper's 2000Q-like chip, 1 us anneals, 40 anneals per wave.
  serve::ServiceConfig cfg;
  cfg.annealer.schedule.anneal_time_us = 1.0;
  cfg.annealer.batch_replicas = replicas;
  if (accept_override) cfg.annealer.accept_mode = *accept_override;
  cfg.annealer.embed.improved_range = true;  // §5.5 trace setting
  cfg.num_anneals = sim::scaled(40);
  cfg.num_threads = threads;
  cfg.num_devices = devices;
  cfg.queue_policy = policy;
  cfg.program_overhead_us = 10.0;

  for (const bool packing : {true, false}) {
    cfg.packing = packing;
    // Trace the packing-ON run: its wave structure (8 jobs folded into one
    // chip wave per subframe) is the interesting picture, and the windowed
    // series below is derived from this event stream.  The sink is always
    // attached for that run — tracing never drifts stdout, so the walkthrough
    // prints identical text with or without --trace / --metrics.
    cfg.trace = packing ? &trace_log : nullptr;
    serve::DecodeService service(cfg);
    serve::LoadGenerator generator(load, 0xA2905);
    const serve::ServiceReport report =
        service.run(generator.open_loop(num_jobs));

    std::printf("\n=== packing %s ===\n", packing ? "ON" : "OFF");
    std::printf("capacity for QPSK shape %zu: %zu jobs/wave; wave service %.1f us\n",
                std::size_t{16}, service.wave_capacity(16),
                service.wave_service_us());
    std::printf("%s", report.stats.digest().c_str());

    if (packing) {
      std::printf("\nfirst subframe, job by job:\n");
      sim::print_columns(
          {"job", "user", "arrive us", "dispatch us", "done us", "wave", "errs"});
      for (std::size_t j = 0; j < std::min<std::size_t>(8, report.jobs.size());
           ++j) {
        const serve::JobRecord& rec = report.jobs[j];
        sim::print_row({sim::fmt_count(rec.job_id), sim::fmt_count(rec.user),
                        sim::fmt_us(rec.arrival_us), sim::fmt_us(rec.dispatch_us),
                        sim::fmt_us(rec.completion_us),
                        sim::fmt_count(rec.wave_id),
                        sim::fmt_count(rec.bit_errors)});
      }

      // Windowed telemetry (obs v2): tumble the traced event stream into
      // fixed virtual-clock windows and evaluate the SLO spec with
      // multi-window burn-rate alerting.  Alerts are also injected into the
      // trace (their own "slo alerts" track when --trace is set).
      const serve::WindowedView view =
          serve::window_trace(trace_log, cfg, metrics, &trace_log);
      std::printf("\nwindowed miss-rate series (window %.0f us, SLO %s):\n",
                  view.collector.width_us(), metrics.slo.c_str());
      sim::print_columns({"window", "t [ms]", "miss rate", "completed",
                          "queue", "occupancy", "watts", "p99 [us]"});
      for (const auto& w : view.collector.windows()) {
        sim::print_row({std::to_string(w.index),
                        sim::fmt_double(w.start_us / 1000.0, 1),
                        sim::fmt_double(w.miss_rate, 3),
                        std::to_string(w.completed),
                        std::to_string(w.queue_depth),
                        sim::fmt_double(w.occupancy, 2),
                        sim::fmt_double(w.watts, 0),
                        sim::fmt_double(w.latency.quantile(99.0), 0)});
      }
      std::size_t alerts = 0;
      for (const auto& report : view.slos) {
        for (const auto& alert : report.alerts) {
          ++alerts;
          std::printf("ALERT %s window %zu [%.0f, %.0f) us: value %.4f "
                      "(long %.4f), burn %.2fx\n",
                      alert.slo.c_str(), alert.window, alert.start_us,
                      alert.end_us, alert.value, alert.long_value, alert.burn);
        }
      }
      if (alerts == 0)
        std::printf("no SLO alerts: every window held %s\n",
                    metrics.slo.c_str());
      const auto& totals = view.collector.totals();
      std::printf("energy accounting: %.3f J over the run, %.6f J per "
                  "decoded bit\n",
                  totals.energy_j, totals.joules_per_bit);

      if (!metrics.path.empty()) {
        if (serve::export_metrics(view, metrics))
          std::cerr << "metrics written to " << metrics.path << "\n";
        else
          std::cerr << "metrics write FAILED: " << metrics.path << "\n";
      }
    }
  }

  // -------------------------------------------------------------------
  // Async streaming: the same subframe traffic through SchedClient.
  // Each subframe's jobs are submitted as they release; poll() after each
  // subframe returns whatever the pool finished by then.
  std::printf("\n=== async streaming (sched::SchedClient) ===\n");
  sched::SchedConfig async_cfg;
  async_cfg.annealer = cfg.annealer;
  async_cfg.devices = sched::uniform_devices(cfg.annealer, devices);
  async_cfg.policy = policy;
  async_cfg.num_anneals = cfg.num_anneals;
  async_cfg.num_threads = threads;
  async_cfg.program_overhead_us = cfg.program_overhead_us;
  async_cfg.seed = cfg.seed;
  sched::SchedClient client(async_cfg);

  serve::LoadGenerator stream_gen(load, 0xA2905);
  const std::size_t async_jobs = std::min<std::size_t>(num_jobs, 32);
  const std::vector<serve::CellJob> stream = stream_gen.open_loop(async_jobs);

  std::size_t polled = 0, errors = 0;
  double last_subframe = 0.0;
  for (const serve::CellJob& job : stream) {
    if (job.arrival_us > last_subframe) {
      // Subframe boundary: collect everything the pool completed so far.
      const std::vector<sched::Completion> done = client.poll();
      polled += done.size();
      for (const sched::Completion& c : done) errors += c.record.bit_errors;
      std::printf("t = %7.0f us: polled %zu completion(s), %zu in flight\n",
                  last_subframe, done.size(), client.submitted() - polled);
      last_subframe = job.arrival_us;
    }
    client.submit(job);
  }
  const std::vector<sched::Completion> tail = client.drain();
  polled += tail.size();
  for (const sched::Completion& c : tail) errors += c.record.bit_errors;
  std::printf("drain: %zu remaining completion(s); total %zu/%zu jobs, "
              "%zu bit errors\n",
              tail.size(), polled, async_jobs, errors);

  std::printf(
      "\nReading: with packing ON, the 8 users of each subframe share one\n"
      "chip wave, so the whole cluster decodes in one anneal batch and the\n"
      "deadline holds with a wide margin; with packing OFF each job queues\n"
      "behind its neighbors' full service times — the §4 parallelization is\n"
      "what makes one annealer a plausible cluster-scale decode appliance.\n"
      "The async client streams the identical schedule: submit() as\n"
      "subframes release, poll() per subframe, drain() at end of stream.\n");

  if (!trace_path.empty()) {
    if (obs::write_chrome_trace_file(trace_log, trace_path))
      std::cerr << "trace written to " << trace_path
                << " (open in Perfetto or chrome://tracing)\n";
    else
      std::cerr << "trace write FAILED: " << trace_path << "\n";
  }
  if (prof) obs::Profiler::instance().dump(std::cerr, 5);
  if (!prof_json.empty()) {
    if (obs::Profiler::instance().dump_json_file(prof_json))
      std::cerr << "profile json written to " << prof_json << "\n";
    else
      std::cerr << "prof-json: could not write " << prof_json << "\n";
  }
  return 0;
}
