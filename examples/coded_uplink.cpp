// Deadline decoding with forward error correction — the paper's §5.3.3
// operating mode made concrete:
//
//   "QuAMax accordingly sets a time deadline for decoding and after that
//    discards bits, relying on forward error correction to drive BER down."
//
// A 12-user QPSK uplink carries one convolutionally-coded (rate-1/2 K=7,
// interleaved) transport block across many subcarriers.  The detector gets a
// HARD anneal budget per subcarrier (the deadline); whatever bits it has at
// the deadline go to the FEC decoder.  We sweep the deadline and print raw
// (detector) BER against post-FEC BER / block error rate, showing the
// code absorbing the detector's residual errors once the raw BER enters the
// code's waterfall.
//
// Build & run:  ./examples/coded_uplink

#include <cstdio>
#include <vector>

#include "quamax/anneal/annealer.hpp"
#include "quamax/core/detector.hpp"
#include "quamax/fec/convolutional.hpp"
#include "quamax/sim/report.hpp"
#include "quamax/sim/runner.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = quamax::sim::cli_threads(argc, argv);
  const std::size_t replicas = quamax::sim::cli_replicas(argc, argv);
  const quamax::anneal::AcceptMode accept_mode =
      quamax::sim::cli_accept_mode(argc, argv);
  using namespace quamax;

  Rng rng{0xC0DE};
  constexpr std::size_t kUsers = 12;
  const auto mod = wireless::Modulation::kQpsk;
  const std::size_t bits_per_use =
      kUsers * static_cast<std::size_t>(wireless::bits_per_symbol(mod));
  constexpr std::size_t kInterleaverRows = 24;
  constexpr int kBlocks = 6;

  const fec::ConvolutionalCode code;
  // One transport block spans 40 subcarriers of coded bits.
  const std::size_t coded_bits = 40 * bits_per_use;
  const std::size_t payload_bits = fec::ConvolutionalCode::payload_bits(coded_bits);

  anneal::AnnealerConfig config;
  config.num_threads = threads;
  config.batch_replicas = replicas;
  config.accept_mode = accept_mode;
  config.schedule.anneal_time_us = 1.0;
  config.schedule.pause_time_us = 1.0;
  config.embed.improved_range = true;
  anneal::ChimeraAnnealer annealer(config);

  std::printf("Coded uplink: %zu-user %s, %zu-bit payload -> %zu coded bits "
              "over 40 subcarriers, rate-1/2 K=7 + %zux interleaving\n\n",
              kUsers, wireless::to_string(mod).c_str(), payload_bits,
              coded_bits, kInterleaverRows);
  sim::print_columns({"deadline Na", "raw BER", "post-FEC BER", "block errors"});

  for (const std::size_t deadline_anneals : {1u, 3u, 10u, 30u, 100u}) {
    core::QuAMaxDetector detector(
        annealer, {.num_anneals = deadline_anneals, .keep_samples = false});

    std::size_t raw_errors = 0, fec_errors = 0, block_errors = 0, total = 0;
    for (int block = 0; block < kBlocks; ++block) {
      wireless::BitVec payload(payload_bits);
      for (auto& b : payload) b = rng.coin();
      wireless::BitVec tx =
          fec::interleave(code.encode(payload), kInterleaverRows);
      tx.resize(coded_bits, 0);  // codeword length == block capacity here

      // Transmit/detect each subcarrier under the anneal deadline.
      wireless::BitVec rx;
      rx.reserve(coded_bits);
      for (std::size_t sc = 0; sc < coded_bits / bits_per_use; ++sc) {
        wireless::ChannelUse use = wireless::make_channel_use(
            kUsers, kUsers, mod, wireless::ChannelKind::kRayleigh, 16.0, rng);
        // Overwrite the random payload with this subcarrier's coded bits.
        std::copy(tx.begin() + static_cast<std::ptrdiff_t>(sc * bits_per_use),
                  tx.begin() + static_cast<std::ptrdiff_t>((sc + 1) * bits_per_use),
                  use.tx_bits.begin());
        use.tx_symbols = wireless::modulate_gray(use.tx_bits, mod);
        use.y = use.h * use.tx_symbols;
        wireless::add_awgn(use.y, use.noise_sigma, rng);

        const core::DetectionResult result = detector.detect(use, rng);
        rx.insert(rx.end(), result.bits.begin(), result.bits.end());
      }
      raw_errors += wireless::count_bit_errors(rx, tx);

      const wireless::BitVec decoded =
          code.decode(fec::deinterleave(rx, kInterleaverRows));
      const std::size_t block_bit_errors =
          wireless::count_bit_errors(decoded, payload);
      fec_errors += block_bit_errors;
      block_errors += block_bit_errors > 0;
      total += payload_bits;
    }

    const double raw_ber = static_cast<double>(raw_errors) /
                           static_cast<double>(kBlocks * coded_bits);
    const double fec_ber =
        static_cast<double>(fec_errors) / static_cast<double>(total);
    sim::print_row({std::to_string(deadline_anneals), sim::fmt_ber(raw_ber),
                    sim::fmt_ber(fec_ber),
                    std::to_string(block_errors) + "/" + std::to_string(kBlocks)});
  }

  std::printf(
      "\nReading: as the per-subcarrier anneal deadline grows, the raw\n"
      "detector BER falls; once it enters the convolutional code's waterfall\n"
      "(~1e-2), the FEC layer eliminates the residual errors — the paper's\n"
      "deadline + FEC operating point.\n");
  return 0;
}
