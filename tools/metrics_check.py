#!/usr/bin/env python3
"""Offline validator for quamax's windowed-metrics JSON (obs v2).

Usage:
    metrics_check.py METRICS.json
    metrics_check.py --emit BINARY [ARG...]

The first form validates a metrics file written by
`serve::export_metrics` (the `--metrics FILE` / `QUAMAX_METRICS` knob of
the serving binaries, JSON flavor).  The second form runs BINARY with
QUAMAX_METRICS pointed at a temp file, then validates what it wrote —
this is the `metrics_roundtrip` CTest, so a change to the windowed
collector that breaks the accounting invariants fails the suite offline.

Checks, in order:

  1. the file is valid JSON with schema "quamax-metrics-v1", and the
     header counts (num_windows, num_devices) match the arrays;
  2. windows tile the timeline exactly: window i spans
     [i*window_us, (i+1)*window_us) with no gap or overlap (adjacent
     bounds are the SAME %.17g double, not merely close), the first
     window starts at 0 and the last covers the horizon;
  3. per-window counts conserve to the run totals: every counter column
     (submitted, completed, fallbacks, dropped, failed, retries, missed,
     resolved, waves, failed_waves, bits) and the latency-sketch sample
     count sum window-wise to the totals block, exactly — they are
     integers, so no tolerance;
  4. the queue is conserved: per-window queue_depth is never negative
     and the final window drains to zero, and submitted jobs resolve to
     exactly completed + fallbacks + dropped;
  5. per-device time tiles the horizon: program + anneal + readout +
     aborted + outage + idle sums to horizon_us for every device, and
     busy_us is exactly the first four — nothing double-counted, nothing
     unattributed;
  6. energy/busy conservation: the sum of per-device attributed busy
     time equals the totals' wave_busy_us (the straight sum of traced
     wave extents, computed independently by the collector), per-window
     busy and energy sum to the same, per-device energy sums to the run
     total, and joules_per_bit is energy / bits;
  7. SLO reports are coherent: each alert's window index is in range,
     its interval matches that window's bounds, breached_windows equals
     the alert count, and worst_burn is the max alert burn;
  8. the Prometheus snapshot (METRICS.json.prom) exists next to the file
     and carries the quamax_windowed_* families.

Float sums (time/energy) use a 1e-9 relative tolerance: windows clip
spans at their bounds, so re-addition crosses windows in a different
order than the collector's and can differ in the last ulp or two.

Exit code 0 = metrics valid, 1 = a check failed, 2 = bad input/usage.
"""

import json
import os
import subprocess
import sys
import tempfile

COUNTERS = ["submitted", "completed", "fallbacks", "dropped", "failed",
            "retries", "missed", "resolved", "waves", "failed_waves", "bits"]


def close(a, b, tol=1e-9):
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def fail(problems):
    for problem in problems:
        print(f"metrics_check: FAIL: {problem}", file=sys.stderr)
    return 1


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"metrics_check: cannot read metrics: {err}", file=sys.stderr)
        return 2

    problems = []

    # -- 1. schema and header ----------------------------------------------
    if doc.get("schema") != "quamax-metrics-v1":
        return fail([f"unexpected schema {doc.get('schema')!r}"])
    windows = doc.get("windows", [])
    devices = doc.get("devices", [])
    totals = doc.get("totals", {})
    width = doc.get("window_us", 0.0)
    horizon = doc.get("horizon_us", 0.0)
    if not windows:
        return fail(["no windows"])
    if doc.get("num_windows") != len(windows):
        problems.append(f"num_windows {doc.get('num_windows')} != "
                        f"{len(windows)} window entries")
    if doc.get("num_devices") != len(devices):
        problems.append(f"num_devices {doc.get('num_devices')} != "
                        f"{len(devices)} device entries")
    if width <= 0:
        problems.append(f"window_us {width} is not positive")

    # -- 2. windows tile the timeline --------------------------------------
    for i, w in enumerate(windows):
        if w["index"] != i:
            problems.append(f"window {i}: index {w['index']}")
        if not close(w["start_us"], i * width):
            problems.append(f"window {i}: starts at {w['start_us']}, "
                            f"expected {i * width}")
        if i > 0 and w["start_us"] != windows[i - 1]["end_us"]:
            problems.append(f"window {i}: gap/overlap — starts at "
                            f"{w['start_us']}, previous ends at "
                            f"{windows[i - 1]['end_us']}")
    if windows[0]["start_us"] != 0:
        problems.append(f"first window starts at {windows[0]['start_us']}")
    if windows[-1]["end_us"] < horizon and not close(
            windows[-1]["end_us"], horizon):
        problems.append(f"last window ends at {windows[-1]['end_us']}, "
                        f"before horizon {horizon}")

    # -- 3. per-window counts conserve to totals ---------------------------
    for key in COUNTERS:
        got = sum(w[key] for w in windows)
        if got != totals.get(key):
            problems.append(f"windows sum {key} to {got}, totals say "
                            f"{totals.get(key)}")
    win_samples = sum(w["latency_us"]["count"] for w in windows)
    if win_samples != totals["latency_us"]["count"]:
        problems.append(f"window latency sketches hold {win_samples} "
                        f"samples, totals sketch {totals['latency_us']['count']}")

    # -- 4. queue conservation ---------------------------------------------
    for w in windows:
        if w["queue_depth"] < 0:
            problems.append(f"window {w['index']}: negative queue depth "
                            f"{w['queue_depth']}")
    if windows[-1]["queue_depth"] != 0:
        problems.append(f"final window queue depth "
                        f"{windows[-1]['queue_depth']}, expected 0 (drained)")
    balance = (totals.get("completed", 0) + totals.get("fallbacks", 0)
               + totals.get("dropped", 0))
    if totals.get("submitted") != balance:
        problems.append(f"submitted {totals.get('submitted')} != completed + "
                        f"fallbacks + dropped = {balance}")

    # -- 5. per-device time tiles the horizon ------------------------------
    for d in devices:
        phases = (d["program_us"] + d["anneal_us"] + d["readout_us"]
                  + d["aborted_us"])
        if not close(d["busy_us"], phases):
            problems.append(f"device {d['device']}: busy_us {d['busy_us']} != "
                            f"phase sum {phases}")
        tiled = phases + d["outage_us"] + d["idle_us"]
        if not close(tiled, horizon):
            problems.append(f"device {d['device']}: busy + outage + idle = "
                            f"{tiled}, horizon {horizon}")

    # -- 6. energy/busy conservation ---------------------------------------
    wave_busy = totals.get("wave_busy_us", 0.0)
    dev_busy = sum(d["busy_us"] for d in devices)
    if not close(dev_busy, wave_busy):
        problems.append(f"device busy sums to {dev_busy}, traced wave spans "
                        f"total {wave_busy}")
    win_busy = sum(w["busy_us"] for w in windows)
    if not close(win_busy, wave_busy):
        problems.append(f"window busy sums to {win_busy}, traced wave spans "
                        f"total {wave_busy}")
    total_energy = totals.get("energy_joules", 0.0)
    win_energy = sum(w["energy_joules"] for w in windows)
    if not close(win_energy, total_energy):
        problems.append(f"window energy sums to {win_energy} J, totals "
                        f"{total_energy} J")
    dev_energy = sum(d["energy_joules"] for d in devices)
    if not close(dev_energy, total_energy):
        problems.append(f"device energy sums to {dev_energy} J, totals "
                        f"{total_energy} J")
    bits = totals.get("bits", 0)
    if bits > 0 and not close(totals.get("joules_per_bit", 0.0),
                              total_energy / bits):
        problems.append(f"joules_per_bit {totals.get('joules_per_bit')} != "
                        f"energy / bits = {total_energy / bits}")

    # -- 7. SLO reports -----------------------------------------------------
    for slo in doc.get("slos", []):
        alerts = slo.get("alerts", [])
        if slo.get("breached_windows") != len(alerts):
            problems.append(f"slo {slo.get('name')}: breached_windows "
                            f"{slo.get('breached_windows')} != "
                            f"{len(alerts)} alerts")
        worst = max((a["burn"] for a in alerts), default=0.0)
        if alerts and not close(slo.get("worst_burn", 0.0), worst):
            problems.append(f"slo {slo.get('name')}: worst_burn "
                            f"{slo.get('worst_burn')} != max alert burn "
                            f"{worst}")
        for a in alerts:
            if not (0 <= a["window"] < len(windows)):
                problems.append(f"slo {slo.get('name')}: alert window "
                                f"{a['window']} out of range")
                continue
            w = windows[a["window"]]
            if a["start_us"] != w["start_us"] or a["end_us"] != w["end_us"]:
                problems.append(f"slo {slo.get('name')}: alert interval "
                                f"[{a['start_us']}, {a['end_us']}) != window "
                                f"{a['window']} bounds")
            if a["value"] <= slo.get("threshold", 0.0):
                problems.append(f"slo {slo.get('name')}: alert at window "
                                f"{a['window']} with value {a['value']} <= "
                                f"threshold {slo.get('threshold')}")

    # -- 8. Prometheus snapshot ---------------------------------------------
    prom_path = path + ".prom"
    try:
        with open(prom_path) as f:
            prom = f.read()
        if "quamax_windowed_" not in prom:
            problems.append(f"{prom_path} lacks quamax_windowed_* families")
    except OSError:
        problems.append(f"Prometheus snapshot {prom_path} missing")

    if problems:
        return fail(problems)
    alerts = sum(len(s.get("alerts", [])) for s in doc.get("slos", []))
    print(f"metrics_check: OK: {len(windows)} windows x {width:g} us tile "
          f"{horizon:g} us, {len(devices)} device(s), counts/busy/energy "
          f"conserve, {len(doc.get('slos', []))} SLO(s) with {alerts} "
          f"alert(s)")
    return 0


def main(argv):
    if len(argv) >= 3 and argv[1] == "--emit":
        with tempfile.TemporaryDirectory() as tmp:
            metrics_path = os.path.join(tmp, "metrics.json")
            env = dict(os.environ, QUAMAX_METRICS=metrics_path,
                       QUAMAX_SLO="miss_rate<=0.05,p99<=100000")
            proc = subprocess.run(argv[2:], env=env,
                                  stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                print(f"metrics_check: emitter exited {proc.returncode}",
                      file=sys.stderr)
                return 2
            if not os.path.exists(metrics_path):
                print("metrics_check: emitter wrote no metrics",
                      file=sys.stderr)
                return 2
            return validate(metrics_path)
    if len(argv) == 2 and not argv[1].startswith("-"):
        return validate(argv[1])
    print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
    print(__doc__.strip().splitlines()[3].strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
