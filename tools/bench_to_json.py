#!/usr/bin/env python3
"""Convert google-benchmark JSON into the repo's machine-readable kernel
perf record (BENCH_kernel.json) and optionally gate on it.

Input is the output of e.g.

    bench_micro_kernels --benchmark_filter='BM_SaSweep' \
        --benchmark_format=json > bench_raw.json

The record keeps one entry per benchmark (items_per_second is spin updates
per second for the BM_SaSweep* family) plus the run context, so CI can
upload it as an artifact and later runs can diff against it.

Two gates, both optional:

  --enforce-ratio FAST SLOW MIN
      fail unless items_per_second[FAST] >= MIN * items_per_second[SLOW].
      Within-run ratios are machine-independent, so this is the robust CI
      check for "threshold mode is faster than exact mode".

  --baseline FILE --min-fraction F
      fail if any benchmark present in both runs dropped below F times its
      recorded baseline items_per_second.  Absolute throughput varies a lot
      across machines (the committed baseline is one reference box), so F
      should be loose — this catches catastrophic regressions (a kernel
      silently falling back to a scalar path), not percent-level drift.

Exit code 0 = converted (and all requested gates passed), 1 = a gate
failed, 2 = bad input.
"""

import argparse
import json
import sys


def load_benchmarks(raw):
    """name -> aggregate record; prefers *_median aggregates when present."""
    out = {}
    medians = {}
    for bench in raw.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[bench.get("run_name", name)] = bench
            continue
        out.setdefault(name, bench)
    out.update(medians)  # aggregate medians shadow single runs
    return out


def record_of(bench):
    rec = {
        "items_per_second": bench.get("items_per_second"),
        "real_time_ns": bench.get("real_time"),
        "cpu_time_ns": bench.get("cpu_time"),
        "iterations": bench.get("iterations"),
    }
    # Every bench binary publishes its domain counters under a quamax_
    # prefix (obs::Registry naming convention), so the record carries them
    # through without a hand-maintained whitelist: adding a counter to a
    # bench is enough to land it in the artifact.
    for counter, value in bench.items():
        if counter.startswith("quamax_"):
            rec[counter] = value
    return rec


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--in", dest="infile", default="-",
                        help="google-benchmark JSON (default: stdin)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="output record path")
    parser.add_argument("--enforce-ratio", nargs=3, action="append",
                        metavar=("FAST", "SLOW", "MIN"), default=[],
                        help="require items/s[FAST] >= MIN * items/s[SLOW]")
    parser.add_argument("--baseline", default=None,
                        help="previously recorded BENCH_kernel.json")
    parser.add_argument("--min-fraction", type=float, default=0.25,
                        help="fail below this fraction of baseline items/s")
    args = parser.parse_args()

    try:
        if args.infile == "-":
            raw = json.load(sys.stdin)
        else:
            with open(args.infile) as f:
                raw = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_to_json: cannot read benchmark JSON: {err}",
              file=sys.stderr)
        return 2

    benchmarks = load_benchmarks(raw)
    if not benchmarks:
        print("bench_to_json: no benchmarks in input", file=sys.stderr)
        return 2

    record = {
        "context": raw.get("context", {}),
        "kernels": {name: record_of(b) for name, b in benchmarks.items()},
    }
    with open(args.out, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_to_json: wrote {len(record['kernels'])} kernels to "
          f"{args.out}")

    failures = []

    def items(name):
        rec = record["kernels"].get(name)
        if rec is None or not rec.get("items_per_second"):
            failures.append(f"benchmark '{name}' missing from this run")
            return None
        return rec["items_per_second"]

    for fast, slow, minimum in args.enforce_ratio:
        f_ips, s_ips = items(fast), items(slow)
        if f_ips is None or s_ips is None:
            continue
        ratio = f_ips / s_ips
        verdict = "OK" if ratio >= float(minimum) else "FAIL"
        print(f"bench_to_json: {fast} / {slow} = {ratio:.2f}x "
              f"(required >= {float(minimum):.2f}x) {verdict}")
        if ratio < float(minimum):
            failures.append(
                f"ratio {fast}/{slow} = {ratio:.2f}x < {float(minimum):.2f}x")

    if args.baseline:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_to_json: cannot read baseline: {err}",
                  file=sys.stderr)
            return 2
        for name, base in sorted(baseline.get("kernels", {}).items()):
            base_ips = base.get("items_per_second")
            cur = record["kernels"].get(name)
            if not base_ips or cur is None or not cur.get("items_per_second"):
                continue
            frac = cur["items_per_second"] / base_ips
            verdict = "OK" if frac >= args.min_fraction else "FAIL"
            print(f"bench_to_json: {name}: {frac:.2f}x of baseline "
                  f"(floor {args.min_fraction:.2f}x) {verdict}")
            if frac < args.min_fraction:
                failures.append(
                    f"{name} fell to {frac:.2f}x of the recorded baseline")

    if failures:
        for failure in failures:
            print(f"bench_to_json: FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
