#!/usr/bin/env python3
"""Round-trip validator for quamax's Chrome trace-event JSON.

Usage:
    trace_to_chrome.py TRACE.json
    trace_to_chrome.py --emit BINARY [ARG...]

The first form validates an existing trace written by
`obs::write_chrome_trace` (the `--trace FILE` / `QUAMAX_TRACE` knob of the
serving binaries).  The second form runs BINARY with QUAMAX_TRACE pointed
at a temp file, then validates what it wrote — this is the `trace_roundtrip`
CTest, so a change to the emitter that breaks the JSON, the span nesting,
or the virtual-clock accounting fails the suite offline.

Checks, in order:

  1. the file is valid JSON with a non-empty `traceEvents` list;
  2. track metadata is present (process_name, an "arrivals" thread, one
     thread per device that dispatched a wave);
  3. every wave slice is tiled EXACTLY by its program/anneal/readout
     children: child spans are contiguous, non-negative, start and end on
     the parent's bounds, and their durations sum to the parent's — the
     emitter prints doubles with %.17g precisely so this re-addition is
     exact, not approximate;
  4. every job flow arrow ("s" at submit, "f" at dispatch) lands inside a
     LIVE wave slice on its device track whose end matches the job's
     recorded completion — i.e. each job's latency decomposes into queue
     (submit -> dispatch) plus the wave's program/anneal/readout spans,
     summing to the virtual-clock total.  Aborted waves ("wave N FAILED",
     fault injection) have no children and host no arrows;
  5. every submitted job reaches EXACTLY ONE terminal: dispatched (flow
     terminator), dropped (drop instant), or degraded to the classical
     fallback (fallback instant).  Retry instants are informational and
     bounded by the terminal.  Each live wave's `num_jobs` arg equals the
     number of jobs whose arrows land on it;
  6. outage slices (fault::FaultPlan windows) sit on their device's track
     with non-negative duration, and no live wave overlaps an outage on
     the same device — the scheduler never serves through a window.

Exit code 0 = trace valid, 1 = a check failed, 2 = bad input/usage.
"""

import json
import os
import subprocess
import sys
import tempfile


def fail(problems):
    for problem in problems:
        print(f"trace_to_chrome: FAIL: {problem}", file=sys.stderr)
    return 1


def validate(path):
    try:
        with open(path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_to_chrome: cannot read trace: {err}", file=sys.stderr)
        return 2

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(["traceEvents missing or empty"])

    problems = []
    slices = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    flow_starts = [e for e in events if e.get("ph") == "s"]
    flow_ends = [e for e in events if e.get("ph") == "f"]
    metas = [e for e in events if e.get("ph") == "M"]

    # -- 2. track metadata -------------------------------------------------
    thread_names = {e["tid"]: e["args"]["name"] for e in metas
                    if e.get("name") == "thread_name"}
    if not any(e.get("name") == "process_name" for e in metas):
        problems.append("no process_name metadata")
    if thread_names.get(0) != "arrivals":
        problems.append("tid 0 is not named 'arrivals'")
    for tid in sorted({s["tid"] for s in slices}):
        if thread_names.get(tid) != f"device {tid - 1}":
            problems.append(f"device track tid {tid} has no thread_name")

    # -- 3. wave slices tile exactly ---------------------------------------
    # The emitter writes each wave slice immediately followed by its three
    # children, so consume the slice list in order.
    waves = []   # live waves: (tid, start, end, args)
    failed = []  # aborted waves (fault injection): (tid, start, end)
    outages = []  # FaultPlan windows: (tid, start, end)
    i = 0
    while i < len(slices):
        wave = slices[i]
        name = wave.get("name", "")
        if name == "outage":
            if wave["dur"] < 0:
                problems.append("outage slice has negative dur")
            outages.append((wave["tid"], wave["ts"],
                            wave["ts"] + wave["dur"]))
            i += 1
            continue
        if not name.startswith("wave "):
            problems.append(f"unexpected top-level slice '{name}'")
            i += 1
            continue
        if name.endswith(" FAILED"):
            # Aborted mid-anneal: no program/anneal/readout children, and no
            # job arrow may terminate on it (the members were requeued).
            if not wave.get("args", {}).get("failed"):
                problems.append(f"{name}: slice lacks failed arg")
            failed.append((wave["tid"], wave["ts"], wave["ts"] + wave["dur"]))
            i += 1
            continue
        children = slices[i + 1:i + 4]
        i += 4
        start, end = wave["ts"], wave["ts"] + wave["dur"]
        waves.append((wave["tid"], start, end, wave.get("args", {})))
        if [c.get("name") for c in children] != ["program", "anneal",
                                                 "readout"]:
            problems.append(f"{name}: children are not program/anneal/readout")
            continue
        cursor = start
        for child in children:
            if child["tid"] != wave["tid"]:
                problems.append(f"{name}: {child['name']} on wrong track")
            if child["dur"] < 0:
                problems.append(f"{name}: {child['name']} has negative dur")
            if child["ts"] != cursor:
                problems.append(f"{name}: {child['name']} starts at "
                                f"{child['ts']}, expected {cursor}")
            cursor = child["ts"] + child["dur"]
        if cursor != end:
            problems.append(f"{name}: children end at {cursor}, parent at "
                            f"{end}")
        if sum(c["dur"] for c in children) != wave["dur"]:
            problems.append(f"{name}: child durations do not sum to parent's")

    # -- 4. job flow arrows land on their wave -----------------------------
    submits = {e["args"]["job"]: e for e in instants
               if e.get("name", "").endswith(" submit")}
    drops = {e["args"]["job"]: e for e in instants
             if e.get("name", "").endswith(" drop")}
    fallbacks = {e["args"]["job"]: e for e in instants
                 if e.get("name", "").endswith(" fallback")}
    retries = [e for e in instants if e.get("name", "").endswith(" retry")]
    starts = {e["id"]: e for e in flow_starts}
    jobs_per_wave = {}
    for f_ev in flow_ends:
        job = f_ev["id"]
        if f_ev.get("bp") != "e":
            problems.append(f"job {job}: flow terminator lacks bp=e")
        s_ev = starts.get(job)
        if s_ev is None:
            problems.append(f"job {job}: flow terminator without origin")
            continue
        if f_ev["ts"] < s_ev["ts"]:
            problems.append(f"job {job}: dispatched before submit")
        if any(w[0] == f_ev["tid"] and w[1] <= f_ev["ts"] < w[2]
               for w in failed):
            problems.append(f"job {job}: arrow terminates on an aborted wave")
            continue
        hosts = [w for w in waves
                 if w[0] == f_ev["tid"] and w[1] <= f_ev["ts"] < w[2]]
        if len(hosts) != 1:
            problems.append(f"job {job}: arrow lands on {len(hosts)} waves")
            continue
        tid, start, end, args = hosts[0]
        if f_ev["args"]["completion_us"] != end:
            problems.append(f"job {job}: completion {f_ev['args']} != wave "
                            f"end {end} — spans do not sum to the "
                            f"virtual-clock total")
        jobs_per_wave[(tid, start)] = jobs_per_wave.get((tid, start), 0) + 1

    # -- 5. conservation: submitted = dispatched + dropped + fallback -------
    dispatched = {e["id"] for e in flow_ends}
    for job in submits:
        terminals = ((job in dispatched) + (job in drops)
                     + (job in fallbacks))
        if terminals != 1:
            problems.append(f"job {job}: {terminals} terminals, expected "
                            f"exactly one of dispatch/drop/fallback")
    for job in dispatched | set(drops) | set(fallbacks):
        if job not in submits:
            problems.append(f"job {job}: terminated but never submitted")
    for e in retries:
        job = e["args"]["job"]
        if job not in submits:
            problems.append(f"job {job}: retried but never submitted")
    for tid, start, end, args in waves:
        got = jobs_per_wave.get((tid, start), 0)
        if args.get("num_jobs") != got:
            problems.append(f"wave at ts {start}: num_jobs "
                            f"{args.get('num_jobs')} but {got} arrows land")

    # -- 6. outages sit on device tracks; live waves never overlap one ------
    for tid, start, end in outages:
        if tid < 1:
            problems.append(f"outage at ts {start} on non-device tid {tid}")
    for tid, start, end, args in waves:
        for o_tid, o_start, o_end in outages:
            if tid == o_tid and start < o_end and end > o_start:
                problems.append(f"wave at ts {start} on tid {tid} overlaps "
                                f"outage [{o_start}, {o_end})")

    if problems:
        return fail(problems)
    extras = ""
    if failed or outages or fallbacks or retries:
        extras = (f", faults: {len(failed)} aborted wave(s), "
                  f"{len(outages)} outage(s), {len(retries)} retry(ies), "
                  f"{len(fallbacks)} fallback(s)")
    print(f"trace_to_chrome: OK: {len(waves)} waves, {len(submits)} jobs "
          f"({len(drops)} dropped) across {len({w[0] for w in waves})} "
          f"device track(s), spans tile and sum exactly{extras}")
    return 0


def main(argv):
    if len(argv) >= 3 and argv[1] == "--emit":
        with tempfile.TemporaryDirectory() as tmp:
            trace_path = os.path.join(tmp, "trace.json")
            env = dict(os.environ, QUAMAX_TRACE=trace_path)
            proc = subprocess.run(argv[2:], env=env, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                print(f"trace_to_chrome: emitter exited "
                      f"{proc.returncode}", file=sys.stderr)
                return 2
            if not os.path.exists(trace_path):
                print("trace_to_chrome: emitter wrote no trace",
                      file=sys.stderr)
                return 2
            return validate(trace_path)
    if len(argv) == 2 and not argv[1].startswith("-"):
        return validate(argv[1])
    print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
    print(__doc__.strip().splitlines()[3].strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
