#!/usr/bin/env python3
"""Checks that relative links in the repo's Markdown files resolve.

Usage: check_md_links.py [repo_root]

Scans README.md and docs/*.md for inline links/images `[text](target)` and
reference definitions `[label]: target`, and fails (exit 1, one line per
problem) when a relative target does not exist on disk.  External links
(http/https/mailto), pure in-page anchors (#...), and absolute paths are
skipped — the job is catching renamed/deleted files and typos, offline.

Wired into CTest as `docs_links` and into the CI docs job, so a PR that
moves a file without fixing the docs fails fast.
"""

import pathlib
import re
import sys

# Inline [text](target) and ![alt](target); target ends at ')' or ' "title"'.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definitions: [label]: target
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~)")


def targets_in(text: str):
    # Drop fenced code blocks: shell snippets legitimately contain (...)
    # sequences that are not links.
    kept, fenced = [], False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            kept.append(line)
    text = "\n".join(kept)
    for pattern in (INLINE_LINK, REFERENCE_DEF):
        for match in pattern.finditer(text):
            yield match.group(1)


def is_checkable(target: str) -> bool:
    if target.startswith(("http://", "https://", "mailto:", "#", "/")):
        return False
    return not re.match(r"^[a-z][a-z0-9+.-]*:", target)  # any other scheme


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    sources = sorted([root / "README.md", *root.glob("docs/*.md")])
    problems = []
    checked = 0
    for source in sources:
        if not source.is_file():
            continue
        for target in targets_in(source.read_text(encoding="utf-8")):
            if not is_checkable(target):
                continue
            checked += 1
            path = target.split("#", 1)[0]  # file.md#anchor -> file.md
            if not (source.parent / path).exists():
                problems.append(f"{source.relative_to(root)}: broken link -> {target}")
    for problem in problems:
        print(problem)
    print(f"check_md_links: {checked} relative links in {len(sources)} files, "
          f"{len(problems)} broken")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
